"""Unit tests for the rename subsystem: free lists, map table, renamer."""

import itertools

import pytest

from repro.errors import SimulationError
from repro.isa import DynInst, Instruction, Opcode, fp_reg
from repro.rename import (
    FreeList,
    MapTable,
    Renamer,
    make_free_lists,
)


def seq_counter():
    counter = itertools.count(1000)
    return lambda: next(counter)


def make_renamer(allow_copies=True, regs=96):
    table = MapTable()
    free_lists = make_free_lists([regs, regs], [32, 32])
    return Renamer(table, free_lists, allow_copies=allow_copies), table, free_lists


def dyn_alu(seq=0, dst=5, srcs=(1, 2), pc=0x1000):
    return DynInst(seq, Instruction(pc, Opcode.ADD, dst, srcs))


class TestFreeList:
    def test_initial_accounting(self):
        fl = FreeList(96, initially_used=32)
        assert fl.free == 64
        assert fl.used == 32

    def test_allocate_release_roundtrip(self):
        fl = FreeList(96, initially_used=32)
        fl.allocate(3)
        assert fl.free == 61
        fl.release(3)
        assert fl.free == 64

    def test_underflow_raises(self):
        fl = FreeList(4)
        with pytest.raises(SimulationError):
            fl.allocate(5)

    def test_overflow_raises(self):
        fl = FreeList(4)
        with pytest.raises(SimulationError):
            fl.release(1)

    def test_arch_state_larger_than_file_rejected(self):
        with pytest.raises(SimulationError):
            FreeList(16, initially_used=32)

    def test_make_free_lists_mismatch(self):
        with pytest.raises(SimulationError):
            make_free_lists([96], [32, 32])


class TestMapTable:
    def test_initial_pinning(self):
        table = MapTable()
        assert table.presence_mask(0) == 1  # int regs in cluster 0
        assert table.presence_mask(fp_reg(0)) == 2  # fp regs in cluster 1

    def test_initial_providers_ready(self):
        table = MapTable()
        provider = table.provider(3, 0)
        assert provider is not None
        assert provider.complete_cycle == 0

    def test_define_clears_other_cluster(self):
        table = MapTable()
        producer = dyn_alu()
        freed = table.define(5, 1, producer)
        assert freed == (1, 0)  # old value held one register in cluster 0
        assert table.presence_mask(5) == 2
        assert table.provider(5, 1) is producer

    def test_add_copy_sets_presence(self):
        table = MapTable()
        copy = dyn_alu(seq=9)
        table.add_copy(5, 1, copy)
        assert table.presence_mask(5) == 3
        assert table.provider(5, 1) is copy

    def test_add_copy_over_existing_rejected(self):
        table = MapTable()
        with pytest.raises(ValueError):
            table.add_copy(5, 0, dyn_alu())  # already present in cluster 0

    def test_count_replicated(self):
        table = MapTable()
        assert table.count_replicated() == 0
        table.add_copy(5, 1, dyn_alu())
        table.add_copy(6, 1, dyn_alu())
        assert table.count_replicated() == 2

    def test_define_after_copy_frees_both(self):
        table = MapTable()
        table.add_copy(5, 1, dyn_alu(seq=1))
        freed = table.define(5, 0, dyn_alu(seq=2))
        assert freed == (1, 1)
        assert table.presence_mask(5) == 1


class TestRenamerPlanning:
    def test_local_operands_need_no_copies(self):
        renamer, _, _ = make_renamer()
        plan = renamer.plan(dyn_alu(), cluster=0)
        assert plan.copies == []
        assert plan.regs_needed == (1, 0)  # just the destination

    def test_remote_operands_need_copies(self):
        renamer, _, _ = make_renamer()
        plan = renamer.plan(dyn_alu(), cluster=1)
        assert plan.copies == [(1, 0), (2, 0)]
        assert plan.regs_needed == (0, 3)  # two copies + destination

    def test_duplicate_source_copied_once(self):
        renamer, _, _ = make_renamer()
        plan = renamer.plan(dyn_alu(srcs=(1, 1)), cluster=1)
        assert plan.copies == [(1, 0)]

    def test_store_data_source_not_copied(self):
        renamer, _, _ = make_renamer()
        store = DynInst(0, Instruction(0x1000, Opcode.STORE, None, (1, 2)))
        plan = renamer.plan(store, cluster=1)
        assert plan.copies == [(1, 0)]  # only the address source

    def test_feasible_checks_free_lists(self):
        renamer, _, free_lists = make_renamer()
        free_lists[0].allocate(free_lists[0].free)  # drain cluster 0
        plan = renamer.plan(dyn_alu(), cluster=0)
        assert not renamer.feasible(plan)


class TestRenaming:
    def test_rename_installs_mapping(self):
        renamer, table, free_lists = make_renamer()
        dyn = dyn_alu()
        plan = renamer.plan(dyn, cluster=0)
        copies = renamer.rename(dyn, plan, cycle=3, next_seq=seq_counter())
        assert copies == []
        assert table.provider(5, 0) is dyn
        assert dyn.cluster == 0
        assert dyn.frees == (1, 0)

    def test_rename_creates_copy_instructions(self):
        renamer, table, free_lists = make_renamer()
        dyn = dyn_alu()
        plan = renamer.plan(dyn, cluster=1)
        copies = renamer.rename(dyn, plan, cycle=3, next_seq=seq_counter())
        assert len(copies) == 2
        for copy in copies:
            assert copy.is_copy
            assert copy.cluster == 0  # executes where the value lives
            assert copy.dispatch_cycle == 3
        # The consumer waits on the copies, not the original providers.
        assert all(p.is_copy for p in dyn.providers)

    def test_copy_reused_by_later_consumers(self):
        renamer, table, _ = make_renamer()
        first = dyn_alu(seq=1)
        plan = renamer.plan(first, cluster=1)
        copies = renamer.rename(first, plan, 0, seq_counter())
        second = dyn_alu(seq=2, dst=6)
        plan2 = renamer.plan(second, cluster=1)
        assert plan2.copies == []  # values already being copied
        renamer.rename(second, plan2, 0, seq_counter())
        assert renamer.copies_created == len(copies) == 2

    def test_fp_destination_written_in_cluster1(self):
        renamer, table, _ = make_renamer()
        fload = DynInst(
            0, Instruction(0x1000, Opcode.FLOAD, fp_reg(2), (1,))
        )
        plan = renamer.plan(fload, cluster=0)  # EA computed in cluster 0
        renamer.rename(fload, plan, 0, seq_counter())
        assert table.provider(fp_reg(2), 1) is fload
        assert table.presence_mask(fp_reg(2)) == 2

    def test_fp_register_copy_is_a_model_violation(self):
        renamer, _, _ = make_renamer()
        fadd = DynInst(
            0,
            Instruction(
                0x1000, Opcode.FADD, fp_reg(0), (fp_reg(1), fp_reg(2))
            ),
        )
        with pytest.raises(SimulationError):
            renamer.plan(fadd, cluster=0)

    def test_copies_forbidden_without_bypasses(self):
        renamer, _, _ = make_renamer(allow_copies=False)
        dyn = dyn_alu()
        plan = renamer.plan(dyn, cluster=1)
        assert not renamer.feasible(plan)
        with pytest.raises(SimulationError):
            renamer.rename(dyn, plan, 0, seq_counter())

    def test_release_at_commit_returns_registers(self):
        renamer, _, free_lists = make_renamer()
        dyn = dyn_alu()
        plan = renamer.plan(dyn, cluster=0)
        renamer.rename(dyn, plan, 0, seq_counter())
        free_before = free_lists[0].free
        renamer.release_at_commit(dyn)
        assert free_lists[0].free == free_before + 1

    def test_register_accounting_balances_over_many_renames(self):
        """Allocate/release must balance: rename N writers of one register
        and commit them in order; occupancy returns to the baseline."""
        renamer, _, free_lists = make_renamer()
        baseline = free_lists[0].free
        chain = []
        for i in range(10):
            dyn = dyn_alu(seq=i)
            plan = renamer.plan(dyn, cluster=0)
            renamer.rename(dyn, plan, i, seq_counter())
            chain.append(dyn)
        for dyn in chain:
            renamer.release_at_commit(dyn)
        # The last writer's register is live, but the initially pinned
        # architectural register of r5 was freed along the way: occupancy
        # is back to the baseline.
        assert free_lists[0].free == baseline
