"""Unit tests for the flat logical register namespace."""

import pytest

from repro.isa import (
    FP_BASE,
    N_FP_REGS,
    N_INT_REGS,
    N_REGS,
    fp_reg,
    int_reg,
    is_fp_reg,
    reg_name,
)


def test_register_counts():
    assert N_REGS == N_INT_REGS + N_FP_REGS
    assert FP_BASE == N_INT_REGS


def test_int_reg_mapping():
    assert int_reg(0) == 0
    assert int_reg(N_INT_REGS - 1) == N_INT_REGS - 1


def test_fp_reg_mapping():
    assert fp_reg(0) == FP_BASE
    assert fp_reg(N_FP_REGS - 1) == N_REGS - 1


def test_is_fp_reg_boundary():
    assert not is_fp_reg(FP_BASE - 1)
    assert is_fp_reg(FP_BASE)


def test_reg_names():
    assert reg_name(int_reg(7)) == "r7"
    assert reg_name(fp_reg(3)) == "f3"


@pytest.mark.parametrize("bad", [-1, N_INT_REGS])
def test_int_reg_out_of_range(bad):
    with pytest.raises(ValueError):
        int_reg(bad)


@pytest.mark.parametrize("bad", [-1, N_FP_REGS])
def test_fp_reg_out_of_range(bad):
    with pytest.raises(ValueError):
        fp_reg(bad)


def test_reg_name_out_of_range():
    with pytest.raises(ValueError):
        reg_name(N_REGS)
    with pytest.raises(ValueError):
        reg_name(-1)
