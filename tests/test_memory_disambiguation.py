"""Unit tests for the central disambiguation queue (paper §2)."""

from repro.isa import DynInst, Instruction, Opcode
from repro.memory import DisambiguationQueue, MemoryHierarchy


def make_lsq(**kwargs):
    return DisambiguationQueue(MemoryHierarchy(), **kwargs)


def load(seq, addr, pc=0x1000):
    inst = Instruction(pc + seq * 4, Opcode.LOAD, 5, (1,))
    dyn = DynInst(seq, inst, mem_addr=addr)
    return dyn


def store(seq, addr, pc=0x1000):
    inst = Instruction(pc + seq * 4, Opcode.STORE, None, (1, 2))
    dyn = DynInst(seq, inst, mem_addr=addr)
    return dyn


class TestLoadScheduling:
    def test_load_waits_for_its_address(self):
        lsq = make_lsq()
        ld = load(0, 0x100)
        lsq.add(ld)
        lsq.step(5)
        assert ld.complete_cycle == -1  # EA not done yet
        ld.ea_done_cycle = 6
        lsq.step(6)
        assert ld.complete_cycle > 6

    def test_load_blocked_by_unknown_store_address(self):
        lsq = make_lsq()
        st = store(0, 0x200)
        ld = load(1, 0x100)
        lsq.add(st)
        lsq.add(ld)
        ld.ea_done_cycle = 3
        lsq.step(3)
        assert ld.complete_cycle == -1  # older store address unknown
        st.ea_done_cycle = 4
        lsq.step(4)
        assert ld.complete_cycle > 4

    def test_store_to_load_forwarding(self):
        lsq = make_lsq()
        st = store(0, 0x100)
        ld = load(1, 0x100)
        lsq.add(st)
        lsq.add(ld)
        st.ea_done_cycle = 2
        ld.ea_done_cycle = 2
        lsq.step(2)
        assert ld.complete_cycle == 2 + lsq.forward_latency
        assert lsq.loads_forwarded == 1
        assert lsq.loads_accessed == 0

    def test_forwarding_requires_same_word(self):
        lsq = make_lsq()
        st = store(0, 0x104)
        ld = load(1, 0x100)
        lsq.add(st)
        lsq.add(ld)
        st.ea_done_cycle = 2
        ld.ea_done_cycle = 2
        lsq.step(2)
        assert lsq.loads_forwarded == 0
        assert lsq.loads_accessed == 1

    def test_younger_store_does_not_forward(self):
        lsq = make_lsq()
        ld = load(0, 0x100)
        st = store(1, 0x100)
        lsq.add(ld)
        lsq.add(st)
        ld.ea_done_cycle = 2
        st.ea_done_cycle = 2
        lsq.step(2)
        assert lsq.loads_forwarded == 0

    def test_load_scheduled_once(self):
        lsq = make_lsq()
        ld = load(0, 0x100)
        lsq.add(ld)
        ld.ea_done_cycle = 1
        lsq.step(1)
        first = ld.complete_cycle
        lsq.step(2)
        assert ld.complete_cycle == first

    def test_port_limit_defers_loads(self):
        lsq = make_lsq()
        loads = [load(i, 0x1000 + 64 * i) for i in range(5)]
        for ld in loads:
            ld.ea_done_cycle = 1
            lsq.add(ld)
        lsq.step(1)
        scheduled = [ld for ld in loads if ld.complete_cycle >= 0]
        assert len(scheduled) == 3  # 3 D-cache ports

    def test_outstanding_miss_limit(self):
        lsq = make_lsq(max_outstanding_misses=1)
        # Two cold loads to different lines: both would miss.
        a = load(0, 0x10000)
        b = load(1, 0x20000)
        for ld in (a, b):
            ld.ea_done_cycle = 1
            lsq.add(ld)
        lsq.step(1)
        assert a.complete_cycle > 0
        assert b.complete_cycle == -1  # MSHR full


class TestEventDrivenLoadScheduling:
    """The event-driven walk (processor mode): loads announce their
    address-ready cycle through ``queue_address`` instead of being
    polled, and must schedule identically to the reference walk."""

    @staticmethod
    def make_event_lsq(**kwargs):
        return DisambiguationQueue(
            MemoryHierarchy(), event_driven=True, **kwargs
        )

    def test_load_parked_until_address_ready(self):
        lsq = self.make_event_lsq()
        ld = load(0, 0x100)
        lsq.add(ld)
        ld.ea_done_cycle = 6
        lsq.queue_address(ld, 6)
        lsq.step(5)
        assert ld.complete_cycle == -1  # still parked in the wheel
        lsq.step(6)
        assert ld.complete_cycle > 6

    def test_barrier_blocks_younger_load_only(self):
        lsq = self.make_event_lsq()
        older = load(0, 0x100)
        st = store(1, 0x200)
        younger = load(2, 0x300)
        lsq.add(older)
        lsq.add(st)
        lsq.add(younger)
        for ld in (older, younger):
            ld.ea_done_cycle = 3
            lsq.queue_address(ld, 3)
        lsq.step(3)  # store address unknown: barrier at seq 1
        assert older.complete_cycle > 3  # older than the barrier
        assert younger.complete_cycle == -1
        st.ea_done_cycle = 4
        lsq.step(4)
        assert younger.complete_cycle > 4

    def test_forwarding_matches_reference(self):
        lsq = self.make_event_lsq()
        st = store(0, 0x100)
        ld = load(1, 0x100)
        lsq.add(st)
        lsq.add(ld)
        st.ea_done_cycle = 2
        ld.ea_done_cycle = 2
        lsq.queue_address(ld, 2)
        lsq.step(2)
        assert ld.complete_cycle == 2 + lsq.forward_latency
        assert lsq.loads_forwarded == 1

    def test_wheel_arrivals_schedule_in_program_order(self):
        lsq = self.make_event_lsq()
        loads = [load(i, 0x1000 + 64 * i) for i in range(5)]
        for ld in loads:
            lsq.add(ld)
            ld.ea_done_cycle = 1
        # Announce youngest-first: the wheel must still schedule the
        # oldest three (3 D-cache ports).
        for ld in reversed(loads):
            lsq.queue_address(ld, 1)
        lsq.step(1)
        scheduled = [ld.seq for ld in loads if ld.complete_cycle >= 0]
        assert scheduled == [0, 1, 2]

    def test_completion_hook_receives_loads(self):
        seen = []
        lsq = DisambiguationQueue(
            MemoryHierarchy(),
            event_driven=True,
            on_complete=lambda dyn, cc, cycle: (
                seen.append((dyn.seq, cc, cycle)),
                setattr(dyn, "complete_cycle", cc),
            ),
        )
        ld = load(0, 0x100)
        lsq.add(ld)
        ld.ea_done_cycle = 1
        lsq.queue_address(ld, 1)
        lsq.step(1)
        assert seen and seen[0][0] == 0 and seen[0][2] == 1


class TestCommitSide:
    def test_commit_store_needs_port(self):
        hierarchy = MemoryHierarchy(dcache_ports=1)
        lsq = DisambiguationQueue(hierarchy)
        st = store(0, 0x100)
        lsq.add(st)
        assert hierarchy.claim_dcache_port(4)  # consume the only port
        assert not lsq.commit_store(st, 4)
        assert lsq.commit_store(st, 5)
        assert len(lsq) == 0

    def test_retire_load_removes_entry(self):
        lsq = make_lsq()
        ld = load(0, 0x100)
        lsq.add(ld)
        lsq.retire_load(ld)
        assert len(lsq) == 0

    def test_stats_dict(self):
        lsq = make_lsq()
        stats = lsq.stats()
        assert stats == {
            "loads_forwarded": 0,
            "loads_accessed": 0,
            "stores_written": 0,
        }
