"""Unit tests for the steering schemes against a mock machine view."""

import pytest

from repro.core.steering import (
    FP_CLUSTER,
    INT_CLUSTER,
    GeneralBalanceSteering,
    ModuloSteering,
    NaiveSteering,
    NonSliceBalanceSteering,
    SliceBalanceSteering,
    affinity_cluster,
    context_for,
    least_loaded,
    make_steering,
    operand_presence,
)
from repro.core.steering.slice_steering import LdStSliceSteering
from repro.isa import DynInst, Instruction, Opcode, fp_reg
from repro.pipeline import ProcessorConfig
from repro.rename import MapTable


class FakeMachine:
    """Just enough machine for unit-testing choose()/on_cycle()."""

    def __init__(self):
        self.config = ProcessorConfig.default()
        self.map_table = MapTable()
        self.ready_counts = [0, 0]
        self._occupancy = [0, 0]
        self.cycle = 0

    def presence_mask(self, reg):
        return self.map_table.presence_mask(reg)

    def iq_occupancy(self, cluster):
        return self._occupancy[cluster]


def dyn(op=Opcode.ADD, pc=0x1000, dst=5, srcs=(1, 2), target=None, seq=0):
    return DynInst(seq, Instruction(pc, op, dst, srcs, target=target))


class TestHelpers:
    def test_operand_presence_initial_state(self):
        machine = FakeMachine()
        counts = operand_presence(dyn(srcs=(1, 2)), machine)
        assert counts == (2, 0)  # int arch state lives in cluster 0

    def test_operand_presence_counts_fp(self):
        machine = FakeMachine()
        d = dyn(
            Opcode.FADD, dst=fp_reg(0), srcs=(fp_reg(1), fp_reg(2))
        )
        assert operand_presence(d, machine) == (0, 2)

    def test_least_loaded_by_ready_counts(self):
        machine = FakeMachine()
        machine.ready_counts = [5, 1]
        assert least_loaded(machine) == 1

    def test_least_loaded_tiebreak_by_occupancy(self):
        machine = FakeMachine()
        machine._occupancy = [10, 3]
        assert least_loaded(machine) == 1

    def test_affinity_follows_majority(self):
        machine = FakeMachine()
        cluster, tie = affinity_cluster(dyn(srcs=(1, 2)), machine)
        assert cluster == 0 and not tie

    def test_affinity_tie_reported(self):
        machine = FakeMachine()
        _, tie = affinity_cluster(dyn(srcs=()), machine)
        assert tie


class TestNaive:
    def test_int_to_cluster0_fp_to_cluster1(self):
        scheme = NaiveSteering()
        scheme.reset(FakeMachine())
        machine = FakeMachine()
        assert scheme.choose(dyn(), machine) == INT_CLUSTER
        fp = dyn(Opcode.FADD, dst=fp_reg(0), srcs=(fp_reg(1),))
        assert scheme.choose(fp, machine) == FP_CLUSTER
        load = dyn(Opcode.LOAD, dst=5, srcs=(1,))
        assert scheme.choose(load, machine) == INT_CLUSTER


class TestModulo:
    def test_alternates(self):
        scheme = ModuloSteering()
        scheme.reset(FakeMachine())
        machine = FakeMachine()
        picks = [scheme.choose(dyn(seq=i), machine) for i in range(6)]
        assert picks == [0, 1, 0, 1, 0, 1]


class TestSliceSteering:
    def test_slice_to_int_cluster(self):
        scheme = LdStSliceSteering()
        scheme.reset(FakeMachine())
        machine = FakeMachine()
        load = dyn(Opcode.LOAD, pc=0x2000, dst=5, srcs=(1,))
        # Before any observation the load is not known to be in the slice.
        assert scheme.choose(load, machine) == FP_CLUSTER
        scheme.on_dispatch(context_for(machine), load, FP_CLUSTER)
        # Now its pc is flagged; the next instance steers to cluster 0.
        assert scheme.choose(load, machine) == INT_CLUSTER

    def test_slice_tagging_for_stats(self):
        scheme = LdStSliceSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        load = dyn(Opcode.LOAD, pc=0x2000, dst=5, srcs=(1,))
        scheme.on_dispatch(context_for(machine), load, 0)
        assert load.in_ldst_slice

    def test_unknown_kind_rejected(self):
        from repro.core.steering.slice_steering import SliceSteering

        with pytest.raises(ValueError):
            SliceSteering("bogus")


class TestNonSliceBalance:
    def test_strong_imbalance_overrides_affinity(self):
        scheme = NonSliceBalanceSteering("ldst")
        machine = FakeMachine()
        scheme.reset(machine)
        # Pile I1 onto cluster 0 beyond the threshold.
        for _ in range(20):
            scheme.imbalance.on_steer(0)
        # Operands live in cluster 0, but balance demands cluster 1.
        assert scheme.choose(dyn(srcs=(1, 2)), machine) == 1

    def test_affinity_when_balanced(self):
        scheme = NonSliceBalanceSteering("ldst")
        machine = FakeMachine()
        scheme.reset(machine)
        assert scheme.choose(dyn(srcs=(1, 2)), machine) == 0


class TestSliceBalance:
    def test_whole_slice_remapped_under_imbalance(self):
        scheme = SliceBalanceSteering("ldst")
        machine = FakeMachine()
        machine.stats = __import__(
            "repro.pipeline.stats", fromlist=["SimStats"]
        ).SimStats()
        scheme.reset(machine)
        load = dyn(Opcode.LOAD, pc=0x2000, dst=5, srcs=(1,))
        scheme.on_dispatch(context_for(machine), load, 0)
        sid = scheme.slice_ids.slice_of(0x2000)
        assert sid == 0x2000
        first = scheme._steer_slice(sid, machine)
        # Overload that cluster heavily.
        for _ in range(30):
            scheme.imbalance.on_steer(first)
        second = scheme._steer_slice(sid, machine)
        assert second == 1 - first
        assert scheme.clusters.remaps == 1


class TestGeneralBalance:
    def test_affinity_followed_when_balanced(self):
        scheme = GeneralBalanceSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        assert scheme.choose(dyn(srcs=(1, 2)), machine) == 0

    def test_tie_goes_least_loaded(self):
        scheme = GeneralBalanceSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        machine.ready_counts = [6, 1]
        assert scheme.choose(dyn(srcs=()), machine) == 1

    def test_imbalance_override(self):
        scheme = GeneralBalanceSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        for _ in range(20):
            scheme.imbalance.on_steer(0)
        assert scheme.choose(dyn(srcs=(1, 2)), machine) == 1

    def test_copies_do_not_count_in_i1(self):
        from repro.isa import make_copy_inst

        scheme = GeneralBalanceSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        copy = make_copy_inst(0, 5, 1)
        scheme.on_dispatch(context_for(machine), copy, 0)
        assert scheme.imbalance.counter == 0


class TestRegistry:
    def test_all_names_instantiate(self):
        from repro.core.steering import available_schemes

        for name in available_schemes():
            scheme = make_steering(name)
            assert scheme is not None

    def test_unknown_name(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_steering("definitely-not-a-scheme")

    def test_duplicate_registration_rejected(self):
        from repro.core.steering import register_scheme
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            register_scheme("naive", NaiveSteering)

    def test_custom_registration_roundtrip(self):
        from repro.core.steering import (
            available_schemes,
            register_scheme,
        )

        class Custom(NaiveSteering):
            name = "test-custom"

        if "test-custom" not in available_schemes():
            register_scheme("test-custom", Custom)
        assert isinstance(make_steering("test-custom"), Custom)
