"""Smoke tests: every example script runs and produces its key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    """Run one example as a subprocess and return its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "li")
    assert "speed-up" in out
    assert "16-way upper bound" in out
    assert "replicated" in out


def test_steering_comparison():
    out = run_example("steering_comparison.py", "li", "2500")
    assert "general-balance" in out
    assert "modulo" in out
    assert "fifo" in out


def test_balance_study():
    out = run_example("balance_study.py", "li")
    assert "ready-count difference" in out
    assert "modulo" in out


def test_custom_scheme():
    out = run_example("custom_scheme.py", "li")
    assert "sticky-affinity" in out
    assert "general-balance" in out


def test_scenario_corpus():
    out = run_example("scenario_corpus.py", "smoke", "900")
    assert "corpus extremes" in out
    assert "reused 4 point(s) from the store" in out
    assert "identical — the trace is the workload" in out


def test_spec_api():
    out = run_example("spec_api.py", "li", "900")
    assert "machine variants" in out
    assert "bypass-latency-3" in out
    assert "clustered[clusters.0.iq_size=16]" in out
    assert "loaded == original: True" in out
    assert "reused 2 from the store" in out


def test_distributed_campaign():
    out = run_example("distributed_campaign.py", "smoke", "900")
    assert "packaged 4 point(s), 2 trace(s)" in out
    assert "4/4 completed" in out
    assert "identical to the serial run" in out


def test_simulation_service():
    out = run_example("simulation_service.py", "smoke", "900")
    assert "daemon serving on 127.0.0.1:" in out
    assert "tenant alice" in out and "tenant bob" in out
    assert out.count("identical to the serial run") == 2


def test_slice_analysis():
    out = run_example("slice_analysis.py", "li")
    assert "static slices" in out
    assert "runtime LdSt slice discovery" in out
