"""Tests for the declarative spec layer (repro.spec).

Covers the machine registry, dotted-path overrides with eager schema
validation, the MachineSpec/RunSpec/SuiteSpec serialisation round trips,
and the repro.run facade.
"""

import pytest

import repro
from repro.errors import ConfigError, SpecError
from repro.pipeline import ProcessorConfig
from repro.spec import (
    MachineSpec,
    RunSpec,
    SuiteSpec,
    apply_override,
    available_machine_families,
    available_machines,
    machine_config,
    machine_description,
    normalize_overrides,
    parse_override,
    register_machine,
    unregister_machine,
)

N = 500
W = 150


# ----------------------------------------------------------------------
# Machine registry
# ----------------------------------------------------------------------
class TestMachineRegistry:
    def test_table2_machines_registered(self):
        names = available_machines()
        for name in ("clustered", "baseline", "upper-bound"):
            assert name in names

    def test_factories_match_config_constructors(self):
        assert machine_config("clustered") == ProcessorConfig.default()
        assert machine_config("baseline") == ProcessorConfig.baseline()
        assert machine_config("upper-bound") == ProcessorConfig.upper_bound()

    def test_parametric_bypass_latency(self):
        config = machine_config("bypass-latency-3")
        assert config.bypass_latency == 3
        assert config.name == "bypass-latency-3"

    def test_parametric_bypass_ports(self):
        assert machine_config("bypass-ports-1").bypass_ports == 1

    def test_parametric_iq_is_symmetric(self):
        config = machine_config("iq-32")
        assert config.clusters[0].iq_size == 32
        assert config.clusters[1].iq_size == 32

    def test_parametric_families_listed(self):
        assert "bypass-latency" in available_machine_families()

    def test_unknown_machine_lists_known_names(self):
        with pytest.raises(ConfigError, match="clustered"):
            machine_config("quantum")

    def test_parametric_value_validated(self):
        # iq-0 parses but violates the cluster config invariants.
        with pytest.raises(ConfigError):
            machine_config("iq-0")

    def test_descriptions_exist(self):
        for name in available_machines():
            assert machine_description(name)

    def test_register_and_unregister(self):
        register_machine(
            "test-tiny",
            lambda: apply_override(
                ProcessorConfig.default(), "iq_size", 8
            ),
            "test machine",
        )
        try:
            assert machine_config("test-tiny").clusters[0].iq_size == 8
            with pytest.raises(ConfigError, match="already registered"):
                register_machine("test-tiny", ProcessorConfig.default)
        finally:
            unregister_machine("test-tiny")
        with pytest.raises(ConfigError):
            machine_config("test-tiny")

    def test_registered_machine_resolves_in_campaign_point(self):
        from repro.analysis.campaign import CampaignPoint

        register_machine(
            "test-wide",
            lambda: apply_override(
                ProcessorConfig.default(), "issue_width", 6
            ),
        )
        try:
            point = CampaignPoint("gcc", "modulo", machine="test-wide")
            assert point.config().clusters[0].issue_width == 6
        finally:
            unregister_machine("test-wide")


# ----------------------------------------------------------------------
# Dotted-path overrides
# ----------------------------------------------------------------------
class TestDottedOverrides:
    def config(self):
        return ProcessorConfig.default()

    def test_top_level_field(self):
        assert apply_override(self.config(), "bypass_latency", 2).bypass_latency == 2

    def test_single_cluster(self):
        config = apply_override(self.config(), "clusters.0.iq_size", 128)
        assert config.clusters[0].iq_size == 128
        assert config.clusters[1].iq_size == 64

    def test_cache_field(self):
        assert apply_override(self.config(), "l1d.size_kb", 32).l1d.size_kb == 32

    def test_legacy_flat_form_is_symmetric(self):
        config = apply_override(self.config(), "iq_size", 48)
        assert config.clusters[0].iq_size == 48
        assert config.clusters[1].iq_size == 48

    def test_unknown_key_names_path_and_fields(self):
        with pytest.raises(ConfigError) as info:
            apply_override(self.config(), "clusters.0.warp", 9)
        assert "clusters.0.warp" in str(info.value)
        assert "valid fields" in str(info.value)
        assert "iq_size" in str(info.value)

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="warp_factor"):
            apply_override(self.config(), "warp_factor", 9)

    def test_bad_cluster_index_names_path(self):
        with pytest.raises(ConfigError) as info:
            apply_override(self.config(), "clusters.7.iq_size", 1)
        assert "clusters.7.iq_size" in str(info.value)
        assert "out of range" in str(info.value)

    def test_non_integer_cluster_index(self):
        with pytest.raises(ConfigError, match="clusters.left.iq_size"):
            apply_override(self.config(), "clusters.left.iq_size", 1)

    def test_type_mismatch_names_path(self):
        with pytest.raises(ConfigError) as info:
            apply_override(self.config(), "clusters.0.iq_size", "big")
        assert "clusters.0.iq_size" in str(info.value)
        assert "expected int" in str(info.value)

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigError, match="bypass_ports"):
            apply_override(self.config(), "bypass_ports", True)

    def test_int_is_not_a_bool(self):
        with pytest.raises(ConfigError, match="allow_copies"):
            apply_override(self.config(), "allow_copies", 1)

    def test_path_stopping_at_nested_config(self):
        with pytest.raises(ConfigError, match="nested config"):
            apply_override(self.config(), "l1d", 3)

    def test_path_through_scalar_field(self):
        with pytest.raises(ConfigError, match="scalar field"):
            apply_override(self.config(), "bypass_latency.x", 1)

    def test_domain_invariants_still_enforced(self):
        # Eager schema validation does not bypass __post_init__ checks.
        with pytest.raises(ConfigError):
            apply_override(self.config(), "clusters.0.iq_size", -4)
        with pytest.raises(ConfigError):
            apply_override(self.config(), "l1d.size_kb", -1)

    def test_normalize_accepts_dict_and_pairs(self):
        as_dict = normalize_overrides({"clusters.0.iq_size": 128})
        as_pairs = normalize_overrides([("clusters.0.iq_size", 128)])
        assert as_dict == as_pairs == (("clusters.0.iq_size", 128),)

    def test_normalize_rejects_container_values(self):
        with pytest.raises(ConfigError, match="scalar"):
            normalize_overrides({"clusters": [1, 2]})

    def test_duplicate_paths_collapse_to_last(self):
        """Same-path repeats keep only the final write (at its position)
        — identical semantics to applying them in order, and it keeps
        the mapping wire form lossless."""
        from repro.spec import apply_overrides

        raw = (
            ("iq_size", 64),
            ("clusters.0.iq_size", 32),
            ("iq_size", 16),
        )
        normalized = normalize_overrides(raw)
        assert normalized == (
            ("clusters.0.iq_size", 32),
            ("iq_size", 16),
        )
        # The collapsed form computes the same machine as the raw order.
        config = ProcessorConfig.default()
        assert apply_overrides(config, normalized) == apply_overrides(
            config, raw
        )

    def test_parse_override_cli_form(self):
        assert parse_override("clusters.0.iq_size=128") == (
            "clusters.0.iq_size",
            128,
        )
        assert parse_override("allow_copies=false") == ("allow_copies", False)
        assert parse_override("allow_copies=True") == ("allow_copies", True)
        assert parse_override("name=foo") == ("name", "foo")
        with pytest.raises(ConfigError, match="PATH=VALUE"):
            parse_override("no-equals-sign")


# ----------------------------------------------------------------------
# Eager validation at grid expansion
# ----------------------------------------------------------------------
class TestEagerGridValidation:
    def test_unknown_override_fails_at_expansion(self):
        from repro.analysis.campaign import expand_grid

        with pytest.raises(ConfigError, match="clusters.7.iq_size"):
            expand_grid(
                ["gcc"],
                ["modulo"],
                overrides=({"clusters.7.iq_size": 1},),
            )

    def test_unknown_machine_fails_at_expansion(self):
        from repro.analysis.campaign import expand_grid

        with pytest.raises(ConfigError, match="quantum"):
            expand_grid(["gcc"], ["modulo"], machines=("quantum",))

    def test_dict_overrides_expand_to_tuples(self):
        from repro.analysis.campaign import expand_grid

        (point,) = expand_grid(
            ["gcc"],
            ["modulo"],
            overrides=({"clusters.0.iq_size": 128},),
            n_instructions=N,
            warmup=W,
        )
        assert point.overrides == (("clusters.0.iq_size", 128),)
        assert point.config().clusters[0].iq_size == 128


# ----------------------------------------------------------------------
# MachineSpec / RunSpec
# ----------------------------------------------------------------------
class TestMachineSpec:
    def test_resolve_applies_overrides(self):
        spec = MachineSpec("clustered", {"clusters.0.iq_size": 128})
        assert spec.resolve().clusters[0].iq_size == 128

    def test_round_trip(self):
        spec = MachineSpec("bypass-latency-2", {"l1d.size_kb": 32})
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    def test_from_bare_name(self):
        assert MachineSpec.from_dict("baseline") == MachineSpec("baseline")

    def test_label(self):
        assert MachineSpec("clustered").label == "clustered"
        assert (
            MachineSpec("clustered", {"iq_size": 32}).label
            == "clustered[iq_size=32]"
        )

    def test_resolve_validates_eagerly(self):
        with pytest.raises(ConfigError, match="warp"):
            MachineSpec("clustered", {"warp": 9}).resolve()

    def test_duplicate_override_paths_round_trip(self):
        spec = MachineSpec(
            "clustered", (("iq_size", 64), ("iq_size", 32))
        )
        assert spec.overrides == (("iq_size", 32),)
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_raises_spec_error(self):
        with pytest.raises(SpecError, match="overides"):
            MachineSpec.from_dict(
                {"name": "clustered", "overides": {"iq_size": 32}}
            )


class TestRunSpec:
    def spec(self):
        return RunSpec(
            bench="gcc",
            scheme="modulo",
            machine=MachineSpec("clustered", {"clusters.0.iq_size": 32}),
            n_instructions=N,
            warmup=W,
        )

    def test_dict_round_trip(self):
        spec = self.spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_machine_string_coerces(self):
        spec = RunSpec(bench="gcc", machine="baseline")
        assert spec.machine == MachineSpec("baseline")

    def test_point_round_trip(self):
        spec = self.spec()
        assert RunSpec.from_point(spec.to_point()) == spec

    def test_missing_bench_raises_spec_error(self):
        with pytest.raises(SpecError, match="bench"):
            RunSpec.from_dict({"scheme": "modulo"})

    def test_unknown_key_raises_spec_error(self):
        with pytest.raises(SpecError, match="instrs"):
            RunSpec.from_dict({"bench": "gcc", "instrs": 5})

    def test_validate_rejects_bad_scheme(self):
        with pytest.raises(ConfigError, match="no-such"):
            RunSpec(bench="gcc", scheme="no-such").validate()


# ----------------------------------------------------------------------
# The repro.run facade
# ----------------------------------------------------------------------
class TestRunFacade:
    def test_runspec_matches_simulate(self):
        spec = RunSpec(
            bench="gcc", scheme="modulo", n_instructions=N, warmup=W
        )
        assert repro.run(spec) == repro.simulate(
            "gcc", steering="modulo", n_instructions=N, warmup=W
        )

    def test_override_changes_the_run(self):
        plain = repro.run(
            RunSpec(bench="li", scheme="modulo", n_instructions=N, warmup=W)
        )
        squeezed = repro.run(
            RunSpec(
                bench="li",
                scheme="modulo",
                machine=MachineSpec("clustered", {"iq_size": 4}),
                n_instructions=N,
                warmup=W,
            )
        )
        assert squeezed.ipc < plain.ipc

    def test_dict_run_spec(self):
        result = repro.run(
            {"bench": "gcc", "scheme": "modulo",
             "n_instructions": N, "warmup": W}
        )
        assert result.ipc > 0

    def test_suite_spec_runs_as_campaign(self, tmp_path):
        suite = SuiteSpec(
            name="t",
            description="facade test",
            benches=("gcc",),
            schemes=("modulo", "general-balance"),
            n_instructions=N,
            warmup=W,
        )
        store = str(tmp_path / "store.json")
        run = repro.run(suite, store=store)
        assert run.n_simulated == 2
        again = repro.run(suite, store=store, resume=True)
        assert again.n_simulated == 0
        assert again.n_cached == 2

    def test_campaign_controls_rejected_for_single_runs(self):
        with pytest.raises(ConfigError, match="suite"):
            repro.run(RunSpec(bench="gcc"), store="x.json")

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError, match="RunSpec"):
            repro.run(42)

    def test_run_point_routes_through_facade(self):
        from repro.analysis.campaign import CampaignPoint, run_point

        point = CampaignPoint(
            "gcc",
            "modulo",
            overrides=(("clusters.0.iq_size", 32),),
            n_instructions=N,
            warmup=W,
        )
        assert run_point(point) == repro.run(point.spec())


# ----------------------------------------------------------------------
# SuiteSpec data files
# ----------------------------------------------------------------------
class TestSuiteSpec:
    def suite(self):
        return SuiteSpec(
            name="ablate",
            description="2x2 ablation",
            benches=("gcc", "li"),
            schemes=("modulo",),
            machines=("clustered", "bypass-latency-2"),
            overrides=({}, {"clusters.0.iq_size": 128}),
            seeds=(0, 1),
            n_instructions=N,
            warmup=W,
        )

    def test_dict_round_trip(self):
        suite = self.suite()
        assert SuiteSpec.from_dict(suite.to_dict()) == suite

    def test_file_round_trip(self, tmp_path):
        suite = self.suite()
        path = str(tmp_path / "ablate.json")
        suite.save(path)
        assert SuiteSpec.load(path) == suite

    def test_points_match_expand_grid(self):
        from repro.analysis.campaign import expand_grid

        suite = self.suite()
        assert suite.points() == expand_grid(
            list(suite.benches),
            list(suite.schemes),
            machines=suite.machines,
            overrides=suite.overrides,
            seeds=suite.seeds,
            n_instructions=N,
            warmup=W,
        )

    def test_validate_rejects_bad_override(self):
        suite = SuiteSpec(
            name="bad",
            description="",
            benches=("gcc",),
            schemes=("modulo",),
            overrides=({"clusters.9.iq_size": 1},),
        )
        with pytest.raises(ConfigError, match="clusters.9.iq_size"):
            suite.validate()

    def test_load_validates(self, tmp_path):
        path = str(tmp_path / "bad.json")
        SuiteSpec(
            name="bad",
            description="",
            benches=("gcc",),
            schemes=("no-such-scheme",),
        ).save(path)
        with pytest.raises(ConfigError, match="no-such-scheme"):
            SuiteSpec.load(path)

    def test_malformed_file_raises_spec_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="JSON"):
            SuiteSpec.load(str(path))

    def test_missing_keys_raise_spec_error(self):
        with pytest.raises(SpecError, match="schemes"):
            SuiteSpec.from_dict(
                {"format": "repro-suite", "name": "x", "benches": ["gcc"]}
            )

    def test_future_version_rejected(self):
        data = self.suite().to_dict()
        data["version"] = 99
        with pytest.raises(SpecError, match="version 99"):
            SuiteSpec.from_dict(data)

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(SpecError, match="format"):
            SuiteSpec.from_dict({"format": "not-a-suite"})

    def test_typo_key_rejected(self):
        """A typo in a suite data file must fail loudly rather than
        silently fall back to a default grid parameter."""
        data = self.suite().to_dict()
        data["n_instruction"] = data.pop("n_instructions")
        with pytest.raises(SpecError, match="n_instruction"):
            SuiteSpec.from_dict(data)
