"""Unit tests for the runtime slice tables (paper §3.3 / Figure 10)."""

import pytest

from repro.core.slices import (
    ClusterTable,
    ParentTable,
    SliceFlagTable,
    SliceIdTable,
)
from repro.isa import DynInst, Instruction, Opcode


def dyn(op, pc, dst=None, srcs=(), target=None, seq=0):
    return DynInst(seq, Instruction(pc, op, dst, srcs, target=target))


class TestParentTable:
    def test_parent_lookup_after_write(self):
        parents = ParentTable()
        producer = dyn(Opcode.ADD, 0x1000, dst=5, srcs=(1,))
        parents.note_decode(producer)
        consumer = dyn(Opcode.ADD, 0x1004, dst=6, srcs=(5,))
        assert parents.parents_of(consumer) == [0x1000]

    def test_unknown_register_has_no_parent(self):
        parents = ParentTable()
        consumer = dyn(Opcode.ADD, 0x1004, dst=6, srcs=(5,))
        assert parents.parents_of(consumer) == []

    def test_self_update_resolves_to_previous_writer(self):
        """r5 = r5 + 4 must see the *previous* writer of r5."""
        parents = ParentTable()
        first = dyn(Opcode.ADDI, 0x1000, dst=5, srcs=(5,))
        parents.note_decode(first)
        second = dyn(Opcode.ADDI, 0x1004, dst=5, srcs=(5,))
        assert parents.parents_of(second) == [0x1000]

    def test_store_parents_exclude_data_source(self):
        parents = ParentTable()
        addr_producer = dyn(Opcode.ADD, 0x1000, dst=1, srcs=(2,))
        data_producer = dyn(Opcode.ADD, 0x1004, dst=9, srcs=(2,))
        parents.note_decode(addr_producer)
        parents.note_decode(data_producer)
        store = dyn(Opcode.STORE, 0x1008, srcs=(1, 9))
        assert parents.parents_of(store) == [0x1000]


class TestSliceFlagTable:
    def test_memory_instruction_defines_slice(self):
        parents = ParentTable()
        flags = SliceFlagTable("ldst")
        load = dyn(Opcode.LOAD, 0x1000, dst=5, srcs=(1,))
        assert flags.observe(load, parents)
        assert flags.in_slice(0x1000)

    def test_branch_defines_br_slice_not_ldst(self):
        parents = ParentTable()
        ldst = SliceFlagTable("ldst")
        br = SliceFlagTable("br")
        branch = dyn(Opcode.BEQ, 0x1000, srcs=(3,), target=0x1000)
        assert not ldst.observe(branch, parents)
        assert br.observe(branch, parents)

    def test_flag_propagates_to_parents_over_executions(self):
        """The slice grows one level per execution, like the hardware."""
        parents = ParentTable()
        flags = SliceFlagTable("ldst")
        grandparent = dyn(Opcode.ADD, 0x0FF8, dst=2, srcs=(3,))
        parent = dyn(Opcode.ADD, 0x0FFC, dst=1, srcs=(2,))
        load = dyn(Opcode.LOAD, 0x1000, dst=5, srcs=(1,))

        # First pass: load flags its parent only.
        for d in (grandparent, parent, load):
            flags.observe(d, parents)
            parents.note_decode(d)
        assert flags.in_slice(0x0FFC)
        assert not flags.in_slice(0x0FF8)

        # Second pass: the flagged parent now propagates further back.
        for d in (grandparent, parent, load):
            flags.observe(d, parents)
            parents.note_decode(d)
        assert flags.in_slice(0x0FF8)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SliceFlagTable("weird")

    def test_len_counts_flagged(self):
        parents = ParentTable()
        flags = SliceFlagTable("ldst")
        flags.observe(dyn(Opcode.LOAD, 0x1000, dst=5, srcs=(1,)), parents)
        flags.observe(dyn(Opcode.LOAD, 0x1004, dst=6, srcs=(1,)), parents)
        assert len(flags) == 2


class TestSliceIdTable:
    def test_defining_instruction_owns_its_slice(self):
        parents = ParentTable()
        ids = SliceIdTable("ldst")
        load = dyn(Opcode.LOAD, 0x1000, dst=5, srcs=(1,))
        assert ids.observe(load, parents) == 0x1000
        assert ids.slice_of(0x1000) == 0x1000

    def test_id_propagates_to_parents(self):
        parents = ParentTable()
        ids = SliceIdTable("ldst")
        parent = dyn(Opcode.ADD, 0x0FFC, dst=1, srcs=(2,))
        load = dyn(Opcode.LOAD, 0x1000, dst=5, srcs=(1,))
        for d in (parent, load):
            ids.observe(d, parents)
            parents.note_decode(d)
        assert ids.slice_of(0x0FFC) == 0x1000

    def test_last_defining_instruction_wins(self):
        """Shared ancestors end up in the most recent slice (hardware
        approximation: one id per pc)."""
        parents = ParentTable()
        ids = SliceIdTable("ldst")
        producer = dyn(Opcode.ADD, 0x0FFC, dst=1, srcs=(2,))
        load_a = dyn(Opcode.LOAD, 0x1000, dst=5, srcs=(1,))
        load_b = dyn(Opcode.LOAD, 0x1004, dst=6, srcs=(1,))
        for d in (producer, load_a, load_b):
            ids.observe(d, parents)
            parents.note_decode(d)
        assert ids.slice_of(0x0FFC) == 0x1004

    def test_non_slice_instruction_returns_none(self):
        ids = SliceIdTable("br")
        assert ids.observe(
            dyn(Opcode.ADD, 0x1000, dst=5, srcs=(1,)), ParentTable()
        ) is None


class TestClusterTable:
    def test_first_use_assigns_default(self):
        table = ClusterTable()
        assert table.cluster_of(0x1000, default=1) == 1
        assert table.cluster_of(0x1000, default=0) == 1  # sticky

    def test_remap(self):
        table = ClusterTable()
        table.cluster_of(0x1000, default=0)
        table.remap(0x1000, 1)
        assert table.cluster_of(0x1000, default=0) == 1
        assert table.remaps == 1

    def test_criticality_events(self):
        table = ClusterTable()
        assert not table.is_critical(0x1000, threshold=1)
        table.record_event(0x1000)
        assert table.events(0x1000) == 1
        assert table.is_critical(0x1000, threshold=1)
        assert not table.is_critical(0x1000, threshold=2)
