"""Unit tests for opcode classification and latencies."""

import pytest

from repro.isa import (
    InstrClass,
    Opcode,
    class_of,
    is_complex_int,
    is_control,
    is_fp,
    is_memory,
    is_simple_int,
    latency_of,
)
from repro.isa.opcodes import UNPIPELINED


def test_every_opcode_has_a_class():
    for op in Opcode:
        assert isinstance(class_of(op), InstrClass)


def test_every_opcode_has_a_latency():
    for op in Opcode:
        assert latency_of(op) >= 1


def test_simple_ops_have_unit_latency():
    for op in (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.CMP, Opcode.MOV):
        assert latency_of(op) == 1


def test_complex_ops_are_slower_than_simple():
    assert latency_of(Opcode.MUL) > 1
    assert latency_of(Opcode.DIV) > latency_of(Opcode.MUL)


def test_divides_are_unpipelined():
    assert Opcode.DIV in UNPIPELINED
    assert Opcode.FDIV in UNPIPELINED
    assert Opcode.ADD not in UNPIPELINED


def test_memory_classification():
    assert is_memory(Opcode.LOAD)
    assert is_memory(Opcode.STORE)
    assert is_memory(Opcode.FLOAD)
    assert is_memory(Opcode.FSTORE)
    assert not is_memory(Opcode.ADD)
    assert not is_memory(Opcode.BEQ)


def test_control_classification():
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP):
        assert is_control(op)
    assert not is_control(Opcode.LOAD)


def test_fp_classification():
    assert is_fp(Opcode.FADD)
    assert is_fp(Opcode.FDIV)
    assert not is_fp(Opcode.FLOAD)  # loads are memory class, not FP class


def test_complex_int_classification():
    assert is_complex_int(Opcode.MUL)
    assert is_complex_int(Opcode.DIV)
    assert not is_complex_int(Opcode.ADD)


def test_simple_int_classification():
    for op in (Opcode.ADD, Opcode.AND, Opcode.SHL, Opcode.CMP, Opcode.ADDI):
        assert is_simple_int(op)
    assert not is_simple_int(Opcode.MUL)
    assert not is_simple_int(Opcode.FADD)


def test_copy_class_is_internal():
    assert class_of(Opcode.COPY) is InstrClass.COPY


@pytest.mark.parametrize(
    "op,cls",
    [
        (Opcode.LOAD, InstrClass.LOAD),
        (Opcode.STORE, InstrClass.STORE),
        (Opcode.BEQ, InstrClass.BRANCH),
        (Opcode.JMP, InstrClass.JUMP),
        (Opcode.NOP, InstrClass.NOP),
        (Opcode.MUL, InstrClass.COMPLEX_INT),
        (Opcode.FMUL, InstrClass.FP),
    ],
)
def test_class_mapping(op, cls):
    assert class_of(op) is cls
