"""Qualitative reproduction checks of the paper's evaluation claims.

These tests assert the *shape* of the results — who wins, in what order,
and roughly by how much — not absolute numbers (our substrate is a
synthetic-workload simulator, not the authors' SimpleScalar + SpecInt95
setup; see EXPERIMENTS.md for the measured-vs-paper comparison).

The windows are kept moderate so the whole module runs in about a minute;
the benchmark harness re-runs the same experiments with larger windows.
"""

import pytest

from repro.analysis import ExperimentRunner, hmean_speedup

BENCHES = ("gcc", "m88ksim", "go", "li")


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        n_instructions=6000, warmup=3000, benchmarks=BENCHES
    )


def hmean(runner, scheme, machine="clustered"):
    return hmean_speedup(list(runner.speedups(scheme, machine).values()))


def mean_comms(runner, scheme):
    results = runner.sweep(scheme)
    return sum(r.comms_per_instr for r in results.values()) / len(results)


class TestHeadlineClaims:
    def test_general_balance_gives_large_speedup(self, runner):
        """§3.8: the headline scheme speeds SpecInt95 up substantially."""
        assert hmean(runner, "general-balance") > 0.10

    def test_general_balance_close_to_upper_bound(self, runner):
        """§3.8: general balance lands within a small gap of the 16-way
        machine (8% in the paper)."""
        general = hmean(runner, "general-balance")
        upper = hmean(runner, "naive", "upper-bound")
        assert general > 0.6 * upper
        assert general <= upper + 0.02

    def test_modulo_is_poor(self, runner):
        """§3.8: modulo balances well but barely speeds up (2.8%)."""
        modulo = hmean(runner, "modulo")
        general = hmean(runner, "general-balance")
        assert modulo < 0.5 * general

    def test_modulo_communicates_massively(self, runner):
        """Figure 12 discussion: modulo's cost is communications."""
        assert mean_comms(runner, "modulo") > 3 * mean_comms(
            runner, "general-balance"
        )


class TestFigure3Claims:
    def test_dynamic_beats_static_on_average(self, runner):
        """§3.3: run-time slice detection outperforms the conservative
        compile-time analysis."""
        dynamic = hmean(runner, "ldst-slice")
        static = hmean(runner, "static-ldst")
        assert dynamic > static

    def test_both_beat_the_base_machine(self, runner):
        assert hmean(runner, "static-ldst") > 0
        assert hmean(runner, "ldst-slice") > 0


class TestSliceFamilyOrdering:
    def test_slice_balance_at_least_slice_steering(self, runner):
        """§3.6: distributing whole slices beats the fixed split."""
        assert hmean(runner, "ldst-slice-balance") >= hmean(
            runner, "ldst-slice"
        ) - 0.02
        assert hmean(runner, "br-slice-balance") >= hmean(
            runner, "br-slice"
        ) - 0.02

    def test_general_tops_the_family(self, runner):
        """§3.8: general balance is the best of the proposed schemes."""
        general = hmean(runner, "general-balance")
        for scheme in (
            "ldst-slice",
            "br-slice",
            "ldst-slice-balance",
            "br-slice-balance",
        ):
            assert general >= hmean(runner, scheme) - 0.03

    def test_priority_reduces_critical_comms(self, runner):
        """§3.7: the priority scheme's point is fewer critical comms."""
        plain = runner.sweep("ldst-slice-balance")
        priority = runner.sweep("ldst-priority")
        plain_crit = sum(
            r.critical_comms_per_instr for r in plain.values()
        )
        priority_crit = sum(
            r.critical_comms_per_instr for r in priority.values()
        )
        assert priority_crit <= plain_crit * 1.15


class TestWorkloadBalanceDistributions:
    @staticmethod
    def _central_mass(distribution, radius=2):
        center = len(distribution) // 2
        return sum(distribution[center - radius : center + radius + 1])

    def test_modulo_balances_best(self, runner):
        """Figure 12: modulo's distribution is the most centred."""
        modulo = runner.run("gcc", "modulo").balance_distribution
        slice_ = runner.run("gcc", "ldst-slice").balance_distribution
        assert self._central_mass(modulo) >= self._central_mass(slice_)

    def test_slice_balance_recovers_balance(self, runner):
        """Figure 12: slice balance approaches modulo's balance."""
        slice_bal = runner.run(
            "gcc", "ldst-slice-balance"
        ).balance_distribution
        slice_ = runner.run("gcc", "ldst-slice").balance_distribution
        assert self._central_mass(slice_bal) >= self._central_mass(
            slice_
        ) - 0.05


class TestRegisterReplication:
    def test_replication_far_below_full_duplication(self, runner):
        """Figure 15: only a few registers replicate, not all 32."""
        for bench in BENCHES:
            result = runner.run(bench, "general-balance")
            assert 0 < result.avg_replication < 16


class TestFifoComparison:
    def test_fifo_communicates_more_than_general(self, runner):
        """§3.9: the FIFO scheme's communications exceed general
        balance's (0.162 vs 0.042 in the paper)."""
        fifo = mean_comms(runner, "fifo")
        general = mean_comms(runner, "general-balance")
        assert fifo > general

    def test_fifo_still_beats_base(self, runner):
        """§3.9: FIFO-based steering improves on the base machine (13%)."""
        assert hmean(runner, "fifo") > 0
