"""Unit tests for static and dynamic instruction records."""

import pytest

from repro.errors import ISAError
from repro.isa import (
    DynInst,
    Instruction,
    InstrClass,
    Opcode,
    make_copy_inst,
)


def add(pc=0x1000, dst=5, srcs=(1, 2)):
    return Instruction(pc, Opcode.ADD, dst, srcs)


class TestInstructionValidation:
    def test_valid_alu(self):
        inst = add()
        assert inst.cls is InstrClass.SIMPLE_INT
        assert inst.latency == 1

    def test_misaligned_pc_rejected(self):
        with pytest.raises(ISAError):
            Instruction(0x1001, Opcode.ADD, 5, (1,))

    def test_negative_pc_rejected(self):
        with pytest.raises(ISAError):
            Instruction(-4, Opcode.ADD, 5, (1,))

    def test_branch_needs_target(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.BEQ, None, (3,))

    def test_branch_with_target_ok(self):
        inst = Instruction(0x1000, Opcode.BEQ, None, (3,), target=0x2000)
        assert inst.is_conditional
        assert inst.is_control

    def test_jump_needs_target(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.JMP, None, ())

    def test_store_needs_two_sources(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.STORE, None, (1,))

    def test_load_needs_destination(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.LOAD, None, (1,))

    def test_load_needs_address_source(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.LOAD, 5, ())

    def test_store_must_not_write_register(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.STORE, 3, (1, 2))

    def test_branch_must_not_write_register(self):
        with pytest.raises(ISAError):
            Instruction(0x1000, Opcode.BEQ, 3, (1,), target=0x2000)


class TestIssueSources:
    def test_store_issue_srcs_exclude_data(self):
        store = Instruction(0x1000, Opcode.STORE, None, (1, 2))
        assert store.issue_srcs == (1,)
        assert store.store_data_src == 2

    def test_load_issue_srcs_are_all_srcs(self):
        load = Instruction(0x1000, Opcode.LOAD, 5, (1,))
        assert load.issue_srcs == (1,)
        assert load.store_data_src is None

    def test_alu_issue_srcs(self):
        inst = add(srcs=(1, 2))
        assert inst.issue_srcs == (1, 2)


class TestDynInst:
    def test_initial_timing_state(self):
        dyn = DynInst(7, add())
        assert dyn.seq == 7
        assert dyn.cluster == -1
        assert dyn.issue_cycle == -1
        assert dyn.complete_cycle == -1
        assert not dyn.issued
        assert not dyn.is_copy

    def test_delegated_properties(self):
        inst = add(pc=0x2000)
        dyn = DynInst(0, inst)
        assert dyn.pc == 0x2000
        assert dyn.opcode is Opcode.ADD
        assert dyn.cls is InstrClass.SIMPLE_INT

    def test_branch_outcome_carried(self):
        branch = Instruction(0x1000, Opcode.BNE, None, (3,), target=0x2000)
        dyn = DynInst(1, branch, taken=True)
        assert dyn.taken

    def test_mem_addr_carried(self):
        load = Instruction(0x1000, Opcode.LOAD, 5, (1,))
        dyn = DynInst(1, load, mem_addr=0xBEEF0)
        assert dyn.mem_addr == 0xBEEF0

    def test_repr_mentions_seq_and_opcode(self):
        dyn = DynInst(42, add())
        assert "42" in repr(dyn)
        assert "ADD" in repr(dyn)


class TestCopyInstructions:
    def test_make_copy(self):
        copy = make_copy_inst(100, logical_reg=7, consumer_seq=99)
        assert copy.is_copy
        assert copy.copy_reg == 7
        assert copy.copy_for == 99
        assert copy.cls is InstrClass.COPY

    def test_copy_has_no_destination(self):
        copy = make_copy_inst(1, 2, 3)
        assert copy.inst.dst is None
