"""Unit tests for machine configurations (Table 2)."""

import pytest

from repro.errors import ConfigError
from repro.pipeline import ClusterConfig, ProcessorConfig


class TestDefault:
    def test_table2_values(self):
        config = ProcessorConfig.default()
        assert config.fetch_width == 8
        assert config.decode_width == 8
        assert config.retire_width == 8
        assert config.max_in_flight == 64
        c0, c1 = config.clusters
        assert c0.iq_size == c1.iq_size == 64
        assert c0.issue_width == c1.issue_width == 4
        assert c0.n_simple_alu == c1.n_simple_alu == 3
        assert c0.has_complex_int and not c1.has_complex_int
        assert c1.n_fp_alu == 3 and c1.has_fp_complex
        assert c0.phys_regs == c1.phys_regs == 96
        assert config.bypass_ports == 3
        assert config.bypass_latency == 1
        assert config.dcache_ports == 3

    def test_imbalance_parameters_match_paper(self):
        config = ProcessorConfig.default()
        assert config.imbalance_window == 16
        assert config.imbalance_threshold == 8

    def test_cache_geometry(self):
        config = ProcessorConfig.default()
        assert (config.l1d.size_kb, config.l1d.assoc, config.l1d.line_bytes) == (64, 2, 32)
        assert (config.l2.size_kb, config.l2.assoc, config.l2.line_bytes) == (256, 4, 64)


class TestBaseline:
    def test_no_simple_int_in_fp_cluster(self):
        config = ProcessorConfig.baseline()
        assert config.clusters[1].n_simple_alu == 0

    def test_no_bypasses(self):
        config = ProcessorConfig.baseline()
        assert not config.allow_copies
        assert config.bypass_ports == 0


class TestUpperBound:
    def test_doubled_integer_throughput(self):
        config = ProcessorConfig.upper_bound()
        assert config.clusters[0].issue_width == 8
        assert config.clusters[0].n_simple_alu == 6
        assert not config.allow_copies  # no communication penalty needed


class TestFifoVariant:
    def test_with_fifo_issue(self):
        config = ProcessorConfig.default().with_fifo_issue()
        assert config.fifo_issue
        assert config.n_fifos == 8
        assert config.fifo_depth == 8
        assert "fifo" in config.name


class TestValidation:
    def test_two_clusters_required(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(clusters=(ClusterConfig(has_complex_int=True),))

    def test_cluster0_needs_complex_unit(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(
                clusters=(
                    ClusterConfig(),
                    ClusterConfig(n_fp_alu=3),
                )
            )

    def test_cluster1_needs_fp_units(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(
                clusters=(
                    ClusterConfig(has_complex_int=True),
                    ClusterConfig(),
                )
            )

    def test_cluster_needs_arch_registers(self):
        with pytest.raises(ConfigError):
            ClusterConfig(phys_regs=16)

    def test_positive_widths(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(fetch_width=0)
        with pytest.raises(ConfigError):
            ClusterConfig(issue_width=0)
