"""Unit tests for the static program representation and behaviours."""

import random

import pytest

from repro.errors import WorkloadError
from repro.isa import Instruction, Opcode
from repro.workloads import (
    BasicBlock,
    BranchBehavior,
    MemBehavior,
    StaticProgram,
)
from repro.workloads.program import sample_branch_outcome, sample_mem_address


def _mini_program():
    """Two blocks: a loop body with a conditional back edge."""
    b0 = [
        Instruction(0x1000, Opcode.ADDI, 5, (5,)),
        Instruction(0x1004, Opcode.LOAD, 6, (5,)),
        Instruction(0x1008, Opcode.CMP, 7, (6,)),
        Instruction(0x100C, Opcode.BNE, None, (7,), target=0x1000),
    ]
    b1 = [
        Instruction(0x1010, Opcode.ADD, 8, (6, 6)),
        Instruction(0x1014, Opcode.JMP, None, (), target=0x1000),
    ]
    blocks = [
        BasicBlock(0, b0, taken_succ=0, fall_succ=1),
        BasicBlock(1, b1, taken_succ=0),
    ]
    return StaticProgram(
        "mini",
        blocks,
        branch_behaviors={0x100C: BranchBehavior("loop", trip=4)},
        mem_behaviors={0x1004: MemBehavior("stream", base=0, region=256)},
    )


class TestBasicBlock:
    def test_terminator_detection(self):
        program = _mini_program()
        assert program.blocks[0].terminator is not None
        assert program.blocks[0].terminator.opcode is Opcode.BNE

    def test_empty_block_rejected(self):
        with pytest.raises(WorkloadError):
            BasicBlock(0, [])

    def test_iteration_and_len(self):
        block = _mini_program().blocks[0]
        assert len(block) == 4
        assert [i.opcode for i in block][0] is Opcode.ADDI


class TestStaticProgramValidation:
    def test_valid_program(self):
        program = _mini_program()
        assert program.num_instructions == 6

    def test_duplicate_pc_rejected(self):
        b0 = [Instruction(0x1000, Opcode.ADD, 5, (1,))]
        b1 = [Instruction(0x1000, Opcode.ADD, 6, (2,))]
        with pytest.raises(WorkloadError):
            StaticProgram(
                "dup",
                [
                    BasicBlock(0, b0, fall_succ=1),
                    BasicBlock(1, b1, fall_succ=0),
                ],
            )

    def test_conditional_without_behavior_rejected(self):
        b0 = [Instruction(0x1000, Opcode.BEQ, None, (1,), target=0x1000)]
        with pytest.raises(WorkloadError):
            StaticProgram(
                "nobehav",
                [BasicBlock(0, b0, taken_succ=0, fall_succ=0)],
            )

    def test_memory_without_behavior_rejected(self):
        b0 = [
            Instruction(0x1000, Opcode.LOAD, 5, (1,)),
            Instruction(0x1004, Opcode.JMP, None, (), target=0x1000),
        ]
        with pytest.raises(WorkloadError):
            StaticProgram("nomem", [BasicBlock(0, b0, taken_succ=0)])

    def test_successor_out_of_range_rejected(self):
        b0 = [Instruction(0x1000, Opcode.JMP, None, (), target=0x1000)]
        with pytest.raises(WorkloadError):
            StaticProgram("badsucc", [BasicBlock(0, b0, taken_succ=3)])

    def test_block_without_successor_rejected(self):
        b0 = [Instruction(0x1000, Opcode.ADD, 5, (1,))]
        with pytest.raises(WorkloadError):
            StaticProgram("nofall", [BasicBlock(0, b0)])


class TestLookups:
    def test_instruction_at(self):
        program = _mini_program()
        assert program.instruction_at(0x1004).opcode is Opcode.LOAD

    def test_instruction_at_bad_pc(self):
        with pytest.raises(WorkloadError):
            _mini_program().instruction_at(0x9999)

    def test_block_of(self):
        program = _mini_program()
        assert program.block_of(0x1010).block_id == 1

    def test_all_instructions_order(self):
        pcs = [i.pc for i in _mini_program().all_instructions()]
        assert pcs == sorted(pcs)


class TestBehaviors:
    def test_loop_behavior_validation(self):
        with pytest.raises(WorkloadError):
            BranchBehavior("loop", trip=1)
        with pytest.raises(WorkloadError):
            BranchBehavior("nope")
        with pytest.raises(WorkloadError):
            BranchBehavior("biased", taken_prob=1.5)

    def test_mem_behavior_validation(self):
        with pytest.raises(WorkloadError):
            MemBehavior("nope", base=0, region=64)
        with pytest.raises(WorkloadError):
            MemBehavior("stream", base=0, region=0)
        with pytest.raises(WorkloadError):
            MemBehavior("stream", base=0, region=64, stride=0)

    def test_loop_outcomes_pattern(self):
        behavior = BranchBehavior("loop", trip=4)
        rng = random.Random(0)
        state = [0]
        outcomes = [
            sample_branch_outcome(behavior, rng, state) for _ in range(8)
        ]
        # taken trip-1 times, then not taken, repeating
        assert outcomes == [True, True, True, False] * 2

    def test_biased_outcomes_follow_probability(self):
        behavior = BranchBehavior("biased", taken_prob=0.9)
        rng = random.Random(1)
        state = [0]
        outcomes = [
            sample_branch_outcome(behavior, rng, state) for _ in range(1000)
        ]
        assert 0.85 < sum(outcomes) / len(outcomes) < 0.95

    def test_stream_addresses_advance_and_wrap(self):
        behavior = MemBehavior("stream", base=64, region=16, stride=4)
        rng = random.Random(0)
        state = [0]
        addrs = [sample_mem_address(behavior, rng, state) for _ in range(6)]
        assert addrs == [64, 68, 72, 76, 64, 68]

    def test_random_addresses_stay_in_region(self):
        behavior = MemBehavior("random", base=128, region=64)
        rng = random.Random(2)
        state = [0]
        for _ in range(100):
            addr = sample_mem_address(behavior, rng, state)
            assert 128 <= addr < 128 + 64
            assert addr % 4 == 0
