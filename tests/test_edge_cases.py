"""Edge cases and failure injection across the pipeline."""

from dataclasses import replace

import pytest

from repro import ProcessorConfig, simulate
from repro.core.steering import make_steering
from repro.errors import SimulationError
from repro.pipeline import Processor
from repro.pipeline.config import ClusterConfig
from repro.workloads import workload


class TestResourcePressure:
    def test_tiny_register_files_still_progress(self):
        """Rename stalls on empty free lists must resolve, not wedge."""
        default = ProcessorConfig.default()
        config = replace(
            default,
            clusters=(
                replace(default.clusters[0], phys_regs=40),
                replace(default.clusters[1], phys_regs=40),
            ),
        )
        result = simulate(
            "li",
            "general-balance",
            config=config,
            n_instructions=1500,
            warmup=300,
        )
        assert result.instructions >= 1500
        assert result.stalls["regs"] > 0  # pressure actually occurred

    def test_tiny_windows_still_progress(self):
        default = ProcessorConfig.default()
        config = replace(
            default,
            clusters=(
                replace(default.clusters[0], iq_size=8),
                replace(default.clusters[1], iq_size=8),
            ),
        )
        result = simulate(
            "gcc",
            "general-balance",
            config=config,
            n_instructions=1500,
            warmup=300,
        )
        assert result.instructions >= 1500
        assert result.stalls["iq"] > 0

    def test_tiny_rob_limits_ipc(self):
        small = replace(ProcessorConfig.default(), max_in_flight=8)
        slow = simulate(
            "ijpeg",
            "general-balance",
            config=small,
            n_instructions=1500,
            warmup=300,
        )
        fast = simulate(
            "ijpeg",
            "general-balance",
            n_instructions=1500,
            warmup=300,
        )
        assert slow.ipc < fast.ipc

    def test_single_dcache_port_hurts(self):
        starved = replace(ProcessorConfig.default(), dcache_ports=1)
        slow = simulate(
            "compress",
            "general-balance",
            config=starved,
            n_instructions=1500,
            warmup=300,
        )
        fast = simulate(
            "compress",
            "general-balance",
            n_instructions=1500,
            warmup=300,
        )
        assert slow.ipc <= fast.ipc


class TestDeadlockDetection:
    def test_unissuable_copies_detected(self):
        """Copies with no bypass ports can never issue; the deadlock guard
        must turn the wedge into a diagnostic error."""
        config = replace(ProcessorConfig.default(), bypass_ports=0)
        wl = workload("gcc")
        processor = Processor(wl, config, make_steering("modulo"))
        with pytest.raises(SimulationError) as err:
            processor.run(2000, warmup=0)
        assert "no commit" in str(err.value)


class TestBypassLatencySensitivity:
    def test_slower_bypasses_reduce_speedup(self):
        fast = simulate(
            "m88ksim",
            "general-balance",
            n_instructions=2000,
            warmup=500,
        )
        slow_config = replace(ProcessorConfig.default(), bypass_latency=4)
        slow = simulate(
            "m88ksim",
            "general-balance",
            config=slow_config,
            n_instructions=2000,
            warmup=500,
        )
        assert slow.ipc < fast.ipc


class TestUpperBoundMachine:
    def test_upper_bound_dominates_clustered(self):
        from repro import simulate_upper_bound

        ub = simulate_upper_bound("m88ksim", n_instructions=2000, warmup=500)
        clustered = simulate(
            "m88ksim", "general-balance", n_instructions=2000, warmup=500
        )
        assert ub.ipc >= clustered.ipc * 0.97  # allow sim noise

    def test_upper_bound_never_communicates(self):
        from repro import simulate_upper_bound

        ub = simulate_upper_bound("gcc", n_instructions=1500, warmup=300)
        assert ub.copies_issued == 0


class TestFifoMachineInvariants:
    def test_fifo_windows_bounded(self):
        config = ProcessorConfig.default().with_fifo_issue()
        wl = workload("li")
        processor = Processor(wl, config, make_steering("fifo"))
        checked = [0]
        original_step = processor.step

        def spy():
            original_step()
            for iq in processor.iqs:
                assert len(iq) <= iq.capacity
                for fifo in iq._fifos:
                    assert len(fifo) <= iq.depth
            checked[0] += 1

        processor.step = spy
        processor._run_until(1500)
        assert checked[0] > 0


class TestPriorityThresholdAdaptation:
    def test_threshold_moves_over_time(self):
        """Run long enough to cross the 8192-cycle adjustment period and
        check the threshold reacted (in either direction)."""
        wl = workload("compress")
        scheme = make_steering("ldst-priority")
        processor = Processor(wl, ProcessorConfig.default(), scheme)
        processor._run_until(35000)
        assert processor.cycle > 8192
        assert scheme.threshold >= 1


class TestWorkloadSeeds:
    def test_different_seed_different_program(self):
        a = workload("go", seed=0)
        b = workload("go", seed=1)
        assert [i.opcode for i in a.program.all_instructions()] != [
            i.opcode for i in b.program.all_instructions()
        ]

    def test_results_differ_across_seeds_but_same_ballpark(self):
        r0 = simulate(
            "go", "general-balance", n_instructions=1500, warmup=300, seed=0
        )
        r1 = simulate(
            "go", "general-balance", n_instructions=1500, warmup=300, seed=1
        )
        assert r0.ipc != r1.ipc
        assert abs(r0.ipc - r1.ipc) / r0.ipc < 0.5
