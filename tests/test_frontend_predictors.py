"""Unit tests for the branch predictors (Table 2 combined predictor)."""

import random

import pytest

from repro.errors import ConfigError
from repro.frontend import (
    BimodalPredictor,
    CombinedPredictor,
    GsharePredictor,
    TwoBitCounterTable,
)


class TestTwoBitCounters:
    def test_initial_weakly_taken(self):
        table = TwoBitCounterTable(16)
        assert table.predict(0)  # initial value 2 = weakly taken

    def test_saturation_up(self):
        table = TwoBitCounterTable(16)
        for _ in range(10):
            table.update(3, True)
        assert table.counter(3) == 3

    def test_saturation_down(self):
        table = TwoBitCounterTable(16)
        for _ in range(10):
            table.update(3, False)
        assert table.counter(3) == 0

    def test_hysteresis(self):
        table = TwoBitCounterTable(16, initial=3)
        table.update(0, False)  # 3 -> 2 still predicts taken
        assert table.predict(0)
        table.update(0, False)  # 2 -> 1 now predicts not taken
        assert not table.predict(0)

    def test_index_wraps(self):
        table = TwoBitCounterTable(4)
        table.update(5, False)
        table.update(5, False)
        assert not table.predict(1)  # 5 & 3 == 1

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            TwoBitCounterTable(12)
        with pytest.raises(ConfigError):
            TwoBitCounterTable(16, initial=7)


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x1000, False)
        assert not predictor.predict(0x1000)

    def test_distinct_pcs_independent(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x1000, False)
        assert predictor.predict(0x1004)  # untouched entry


class TestGshare:
    def test_history_shifts(self):
        predictor = GsharePredictor(256, history_bits=4)
        predictor.update(0x1000, True)
        predictor.update(0x1000, False)
        assert predictor.history == 0b10

    def test_learns_alternating_pattern(self):
        """Gshare disambiguates by history, so T/N/T/N becomes learnable."""
        predictor = GsharePredictor(1 << 12, history_bits=8)
        outcome = True
        for _ in range(200):
            predictor.update(0x4000, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if predictor.predict(0x4000) == outcome:
                correct += 1
            predictor.update(0x4000, outcome)
            outcome = not outcome
        assert correct >= 95

    def test_bad_history_bits(self):
        with pytest.raises(ConfigError):
            GsharePredictor(256, history_bits=0)


class TestCombined:
    def test_learns_strong_bias(self):
        predictor = CombinedPredictor()
        for _ in range(50):
            predictor.predict_and_update(0x2000, True)
        assert predictor.predict(0x2000)

    def test_accuracy_tracking(self):
        predictor = CombinedPredictor()
        for _ in range(100):
            predictor.predict_and_update(0x2000, True)
        assert predictor.predictions == 100
        assert predictor.accuracy > 0.9

    def test_accuracy_of_unused_predictor(self):
        assert CombinedPredictor().accuracy == 1.0

    def test_beats_bimodal_on_history_patterns(self):
        """The tournament should pick gshare for pattern branches."""
        rng = random.Random(0)
        combined = CombinedPredictor()
        bimodal = BimodalPredictor()
        pattern = [True, True, False]
        hits_c = hits_b = 0
        n = 600
        for i in range(n):
            outcome = pattern[i % 3]
            if combined.predict(0x3000) == outcome:
                hits_c += 1
            if bimodal.predict(0x3000) == outcome:
                hits_b += 1
            combined.update(0x3000, outcome)
            bimodal.update(0x3000, outcome)
        assert hits_c > hits_b

    def test_random_branches_near_chance(self):
        rng = random.Random(1)
        predictor = CombinedPredictor()
        for _ in range(2000):
            predictor.predict_and_update(0x5000, rng.random() < 0.5)
        assert 0.35 < predictor.accuracy < 0.65
