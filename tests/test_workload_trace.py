"""Unit tests for the dynamic trace executor."""

from repro.isa import InstrClass
from repro.workloads import TraceExecutor, workload


def test_trace_is_deterministic():
    wl = workload("li")
    a = [r.inst.pc for r in wl.trace().take(5000)]
    b = [r.inst.pc for r in wl.trace().take(5000)]
    assert a == b


def test_trace_seed_changes_outcomes():
    wl = workload("li")
    base = TraceExecutor(wl.program, seed=0).take(5000)
    other = TraceExecutor(wl.program, seed=7).take(5000)
    taken_a = [r.taken for r in base if r.inst.is_conditional]
    taken_b = [r.taken for r in other if r.inst.is_conditional]
    assert taken_a != taken_b


def test_trace_follows_cfg_edges():
    """Consecutive records must follow program successor edges."""
    wl = workload("gcc")
    program = wl.program
    trace = wl.trace()
    prev = next(trace)
    for record in trace.take(5000):
        inst = prev.inst
        block = program.block_of(inst.pc)
        if inst.pc == block.instructions[-1].pc:
            # block transition
            if inst.is_control and prev.taken:
                expected = program.blocks[block.taken_succ].start_pc
            else:
                expected = program.blocks[block.fall_succ].start_pc
            assert record.inst.pc == expected
        else:
            assert record.inst.pc == inst.pc + 4
        prev = record


def test_memory_records_have_addresses():
    wl = workload("compress")
    for record in wl.trace().take(3000):
        if record.inst.is_memory:
            assert record.mem_addr >= 0
            assert record.mem_addr % 4 == 0


def test_non_control_records_not_taken():
    wl = workload("go")
    for record in wl.trace().take(2000):
        if not record.inst.is_control:
            assert not record.taken


def test_jumps_always_taken():
    wl = workload("go")
    for record in wl.trace().take(5000):
        if record.inst.cls is InstrClass.JUMP:
            assert record.taken


def test_skip_advances_without_yielding():
    wl = workload("perl")
    t1 = wl.trace()
    t1.skip(100)
    rest = t1.take(50)
    t2 = wl.trace()
    full = t2.take(150)
    assert [r.inst.pc for r in rest] == [r.inst.pc for r in full[100:]]


def test_emitted_counter():
    trace = workload("perl").trace()
    trace.take(123)
    assert trace.emitted == 123


def test_trace_is_endless():
    """The CFG is closed: far more dynamic records than static pcs."""
    wl = workload("compress")
    records = wl.trace().take(20000)
    assert len(records) == 20000
    assert len({r.inst.pc for r in records}) <= wl.program.num_instructions
