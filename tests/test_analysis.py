"""Unit tests for metrics, the experiment runner, and report printers."""

import pytest

from repro.analysis import (
    ExperimentRunner,
    average_distributions,
    format_balance_histogram,
    format_comm_table,
    format_kv_table,
    format_speedup_table,
    format_value_table,
    geometric_mean,
    gmean_speedup,
    harmonic_mean,
    hmean_speedup,
    mean,
    speedup_map,
    table1_workloads,
    table2_parameters,
)
from repro.errors import ConfigError


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_hmean_below_gmean(self):
        values = [0.10, 0.50, 0.30]
        assert hmean_speedup(values) <= gmean_speedup(values)

    def test_speedup_shift(self):
        # identical speedups pass through unchanged
        assert gmean_speedup([0.2, 0.2]) == pytest.approx(0.2)
        assert hmean_speedup([0.2, 0.2]) == pytest.approx(0.2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([])
        with pytest.raises(ConfigError):
            harmonic_mean([])
        with pytest.raises(ConfigError):
            mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestDistributionAverage:
    def test_pointwise(self):
        avg = average_distributions([(0.0, 1.0), (1.0, 0.0)])
        assert avg == (0.5, 0.5)

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            average_distributions([(1.0,), (0.5, 0.5)])


class TestRunnerCaching:
    def test_cache_hit_returns_same_object(self):
        runner = ExperimentRunner(n_instructions=600, warmup=200)
        a = runner.run("li", "general-balance")
        b = runner.run("li", "general-balance")
        assert a is b

    def test_speedups_keys(self):
        runner = ExperimentRunner(
            n_instructions=600, warmup=200, benchmarks=("li", "gcc")
        )
        speedups = runner.speedups("general-balance")
        assert set(speedups) == {"li", "gcc"}

    def test_speedup_map_mismatched_keys(self):
        runner = ExperimentRunner(n_instructions=600, warmup=200)
        with pytest.raises(ConfigError):
            speedup_map(
                {"li": runner.run("li", "modulo")},
                {"gcc": runner.base("gcc")},
            )


class TestTables:
    def test_table1_has_eight_rows(self):
        rows = table1_workloads()
        assert len(rows) == 8
        assert rows[0]["benchmark"] == "go"

    def test_table2_matches_paper_parameters(self):
        params = table2_parameters()
        assert params["fetch width"] == "8 instructions"
        assert params["issue width"] == "4 + 4"
        assert "96" in params["physical registers"]
        assert "3/cycle" in params["communications"]


class TestReportFormatting:
    def test_speedup_table_renders_rows(self):
        text = format_speedup_table(
            "t",
            ["a", "b"],
            {"x": {"a": 0.1, "b": 0.2}},
            {"x": 0.15},
        )
        assert "+10.0%" in text and "+20.0%" in text and "+15.0%" in text

    def test_comm_table(self):
        text = format_comm_table(
            "t", {"s": {"critical": 0.04, "noncritical": 0.01, "total": 0.05}}
        )
        assert "0.040" in text and "0.050" in text

    def test_histogram_renders_all_bins(self):
        dist = tuple([1.0 / 21] * 21)
        text = format_balance_histogram("t", {"x": dist})
        assert text.count("\n") >= 21
        assert "+10" in text and "-10" in text

    def test_value_table(self):
        text = format_value_table("t", ["a"], {"a": 3.14}, "regs", 3.14)
        assert "3.14" in text

    def test_kv_table(self):
        text = format_kv_table("t", {"k": "v"})
        assert "k" in text and "v" in text
