"""Cycle-exactness of the optimised pipelines vs the reference scan.

Two performance reworks are pinned bit-exact here: the event-driven
issue scheduler (``scheduler="event"`` vs the ``"scan"`` reference) and
the fused columnar dispatch stage (``dispatch="columnar"`` vs the
``"object"`` reference) — each compared against the retained unfused
implementations across schemes, machines and ablation families.


The event-driven wakeup/select path (pending-operand counters, ready
sets, completion calendar — ``scheduler="event"``, the default) is a
pure performance rework: it must produce *bit-identical* results to the
retained full-scan reference (``scheduler="scan"``), cycle for cycle,
on every scheme and machine.  These tests pin that equivalence on the
smoke-suite workloads across the full scheme registry, every Table 2
machine, the FIFO window organisation, and the ablation families —
including the zero-latency bypass edge case, where a copy completes in
the very cycle it issues and its remote consumer must become selectable
within the same cycle.

``SimResult`` equality covers every statistic the model reports: IPC
and cycle counts, copies created/issued/critical, the ready-count
balance histogram, replication, ROB/IQ occupancy averages, stall
tallies and per-class commit counts — so any scheduling divergence,
even one that leaves IPC unchanged, fails here.
"""

import pytest

from repro.core.steering import available_schemes, make_steering
from repro.pipeline.processor import SCHEDULERS, Processor
from repro.spec import machine_config
from repro.workloads import workload

#: Smoke-suite measurement window (kept small: this file runs the full
#: scheme x machine grid twice).
N_INSTRUCTIONS = 800
WARMUP = 200


def run_with(scheduler, bench, scheme_name, machine_name, dispatch=None):
    wl = workload(bench, seed=0)
    config = machine_config(machine_name)
    scheme = make_steering(scheme_name)
    if getattr(scheme, "requires_fifo_issue", False) and not config.fifo_issue:
        config = config.with_fifo_issue()
    processor = Processor(
        wl, config, scheme, scheduler=scheduler, dispatch=dispatch
    )
    return processor.run(N_INSTRUCTIONS, warmup=WARMUP)


def assert_equivalent(bench, scheme_name, machine_name):
    event = run_with("event", bench, scheme_name, machine_name)
    scan = run_with("scan", bench, scheme_name, machine_name)
    assert event == scan, (
        f"event scheduler diverged from reference scan for "
        f"({bench}, {scheme_name}, {machine_name}): "
        f"ipc {event.ipc} vs {scan.ipc}, cycles {event.cycles} vs "
        f"{scan.cycles}"
    )


def assert_dispatch_equivalent(bench, scheme_name, machine_name):
    """Columnar dispatch must match the object path *and* the scan oracle."""
    columnar = run_with(
        "event", bench, scheme_name, machine_name, dispatch="columnar"
    )
    obj = run_with(
        "event", bench, scheme_name, machine_name, dispatch="object"
    )
    oracle = run_with(
        "scan", bench, scheme_name, machine_name, dispatch="object"
    )
    assert columnar == obj, (
        f"columnar dispatch diverged from the object path for "
        f"({bench}, {scheme_name}, {machine_name}): "
        f"ipc {columnar.ipc} vs {obj.ipc}, cycles {columnar.cycles} vs "
        f"{obj.cycles}"
    )
    assert columnar == oracle, (
        f"columnar dispatch diverged from the scan oracle for "
        f"({bench}, {scheme_name}, {machine_name}): "
        f"ipc {columnar.ipc} vs {oracle.ipc}, cycles {columnar.cycles} "
        f"vs {oracle.cycles}"
    )


class TestEverySchemeOnClustered:
    """All registered schemes on the Table 2 clustered machine."""

    @pytest.mark.parametrize("scheme_name", available_schemes())
    @pytest.mark.parametrize("bench", ["gcc", "pchase-heavy"])
    def test_scheme_equivalent(self, bench, scheme_name):
        assert_equivalent(bench, scheme_name, "clustered")


class TestEveryMachine:
    """Each registered machine under a compatible scheme."""

    @pytest.mark.parametrize(
        "scheme_name,machine_name",
        [
            ("naive", "baseline"),
            ("naive", "upper-bound"),
            ("fifo", "clustered-fifo"),
            ("general-balance", "clustered"),
        ],
    )
    def test_machine_equivalent(self, scheme_name, machine_name):
        assert_equivalent("gcc", scheme_name, machine_name)


class TestAblationFamilies:
    """Parametric families, including the wakeup-sensitive corners."""

    @pytest.mark.parametrize(
        "machine_name",
        [
            # Zero-latency bypass: a copy completes the cycle it issues;
            # its remote consumer must wake within the same cycle.
            "bypass-latency-0",
            "bypass-latency-3",
            # One bypass port: copies stay ready-but-unissuable across
            # cycles, exercising ready-set retention.
            "bypass-ports-1",
            # Tiny windows: dispatch stalls on full queues.
            "iq-8",
            # Deep windows: the issue-bound regime the event scheduler
            # is built for.
            "deep-window-256",
        ],
    )
    @pytest.mark.parametrize("bench", ["gcc", "pchase-heavy"])
    def test_family_equivalent(self, bench, machine_name):
        assert_equivalent(bench, "general-balance", machine_name)


class TestColumnarDispatchEverySchemeOnClustered:
    """Columnar dispatch pinned bit-exact for every scheme (Table 2)."""

    @pytest.mark.parametrize("scheme_name", available_schemes())
    def test_scheme_dispatch_equivalent(self, scheme_name):
        assert_dispatch_equivalent("gcc", scheme_name, "clustered")


class TestColumnarDispatchEveryMachine:
    """Columnar dispatch across machine shapes, incl. FIFO fallback."""

    @pytest.mark.parametrize(
        "scheme_name,machine_name",
        [
            ("naive", "baseline"),
            ("naive", "upper-bound"),
            # FIFO windows route through the object dispatch loop even
            # in columnar mode; this pins that the routing is sound.
            ("fifo", "clustered-fifo"),
            ("general-balance", "clustered"),
        ],
    )
    def test_machine_dispatch_equivalent(self, scheme_name, machine_name):
        assert_dispatch_equivalent("gcc", scheme_name, machine_name)


class TestColumnarDispatchAblations:
    """Ablation corners for the fused dispatch loop.

    ``bypass-latency-0`` exercises same-cycle copy wakeup through the
    inline window insert; ``iq-2`` exercises the fused loop's stall
    paths (window reservation for consumers *and* their copies);
    ``deep-window-256`` exercises the issue-bound regime where the
    fused insert feeds long ready lists.
    """

    @pytest.mark.parametrize(
        "machine_name",
        ["bypass-latency-0", "iq-2", "deep-window-256"],
    )
    @pytest.mark.parametrize("bench", ["gcc", "pchase-heavy"])
    def test_ablation_dispatch_equivalent(self, bench, machine_name):
        assert_dispatch_equivalent(bench, "general-balance", machine_name)


class TestDispatchSelection:
    def test_unknown_dispatch_rejected(self):
        from repro.errors import SimulationError
        from repro.pipeline.config import ProcessorConfig

        with pytest.raises(SimulationError):
            Processor(
                workload("gcc", seed=0),
                ProcessorConfig.default(),
                make_steering("naive"),
                dispatch="vectorised",
            )

    def test_env_override_selects_object(self, monkeypatch):
        from repro.pipeline.config import ProcessorConfig

        monkeypatch.setenv("REPRO_DISPATCH", "object")
        processor = Processor(
            workload("gcc", seed=0),
            ProcessorConfig.default(),
            make_steering("naive"),
        )
        assert processor.dispatch_mode == "object"

    def test_dispatch_modes_registry(self):
        from repro.pipeline.processor import DISPATCH_MODES

        assert DISPATCH_MODES == ("columnar", "object")

    def test_columnar_is_default(self, monkeypatch):
        from repro.pipeline.config import ProcessorConfig

        monkeypatch.delenv("REPRO_DISPATCH", raising=False)
        processor = Processor(
            workload("gcc", seed=0),
            ProcessorConfig.default(),
            make_steering("naive"),
        )
        assert processor.dispatch_mode == "columnar"


class TestSchedulerSelection:
    def test_unknown_scheduler_rejected(self):
        from repro.errors import SimulationError
        from repro.pipeline.config import ProcessorConfig

        with pytest.raises(SimulationError):
            Processor(
                workload("gcc", seed=0),
                ProcessorConfig.default(),
                make_steering("naive"),
                scheduler="quantum",
            )

    def test_env_override_selects_scan(self, monkeypatch):
        from repro.pipeline.config import ProcessorConfig

        monkeypatch.setenv("REPRO_SCHEDULER", "scan")
        processor = Processor(
            workload("gcc", seed=0),
            ProcessorConfig.default(),
            make_steering("naive"),
        )
        assert processor.scheduler == "scan"

    def test_schedulers_registry(self):
        assert SCHEDULERS == ("event", "scan")


class TestFullWindowEdge:
    """Dispatch must stall cleanly, not raise, when a window fills."""

    def test_tiny_window_stalls_and_completes(self):
        result = run_with("event", "gcc", "general-balance", "iq-2")
        # Commit retires up to retire_width per cycle, so the measured
        # window may overshoot the target by a cycle's worth.
        assert result.instructions >= N_INSTRUCTIONS
        assert result.stalls["iq"] > 0

    def test_tiny_window_stalls_identically_in_both_schedulers(self):
        assert_equivalent("gcc", "general-balance", "iq-2")
