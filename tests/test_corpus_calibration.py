"""Corpus calibration: stress families behave as their design intent says.

The parametric stress families in :mod:`repro.scenarios.registry` are
*designed* to stress one axis each — branch-hostile profiles carry
near-50/50 data-dependent branches, memory-stress profiles carry
footprints far beyond the L1, pointer-chase profiles serialise loads.
These tests measure the generated workloads and assert the measured
branch accuracy / D-cache miss profile / IPC actually lands where the
registered profile parameters say it should, so a trace-generator
regression cannot silently invalidate every suite built on the corpus.

The simulator is deterministic, so the measured values are exact for
fixed seeds; the tolerance bands below are calibrated from the current
generator with wide margins (they guard intent, not third decimals).
Each family is measured over two seeds to keep single-trace luck out of
the comparison.
"""

import pytest

from repro.pipeline import simulate
from repro.scenarios import get_family
from repro.workloads import get_profile

#: Small deterministic windows: family-level contrasts are visible well
#: before the paper-scale windows.
N = 2500
W = 600
SEEDS = (0, 1)


def measured(bench):
    """Seed-averaged (branch_accuracy, l1d_miss_rate, ipc) for *bench*."""
    runs = [
        simulate(
            bench, steering="modulo",
            n_instructions=N, warmup=W, seed=seed,
        )
        for seed in SEEDS
    ]
    n = len(runs)
    return (
        sum(r.branch_accuracy for r in runs) / n,
        sum(r.l1d_miss_rate for r in runs) / n,
        sum(r.ipc for r in runs) / n,
    )


class TestBranchHostileFamily:
    def test_design_intent_is_registered(self):
        """The profiles really encode "hostile < mild" predictability."""
        mild = get_profile("branchy-mild")
        hostile = get_profile("branchy-hostile")
        assert hostile.loop_branch_frac < mild.loop_branch_frac
        low, high = hostile.data_branch_bias
        assert 0.35 <= low and high <= 0.65  # near-coin-flip branches
        assert "branchy-hostile" in get_family("branch-hostile").members

    def test_measured_accuracy_matches_intent(self):
        mild_acc, _, _ = measured("branchy-mild")
        hostile_acc, _, _ = measured("branchy-hostile")
        # Mostly-unpredictable branches must show: clearly below the
        # mild sibling and below any loop-dominated profile.
        assert hostile_acc < 0.88
        assert hostile_acc < mild_acc - 0.05
        assert 0.85 < mild_acc < 0.97

    def test_streaming_family_predicts_well(self):
        stream_acc, _, _ = measured("stream-hot")
        hostile_acc, _, _ = measured("branchy-hostile")
        # loop_branch_frac=0.9 with strong bias => high accuracy.
        assert stream_acc > 0.90
        assert stream_acc > hostile_acc + 0.05


class TestMemoryStressFamily:
    def test_design_intent_is_registered(self):
        small = get_profile("memhog-512k")
        big = get_profile("memhog-2m")
        hot = get_profile("stream-hot")
        assert big.footprint_bytes > small.footprint_bytes
        assert big.cold_access_frac > small.cold_access_frac
        assert hot.cold_access_frac < 0.01  # cache-resident by design
        assert "memhog-2m" in get_family("memory-stress").members

    def test_measured_miss_profile_matches_intent(self):
        _, hot_miss, _ = measured("stream-hot")
        _, small_miss, _ = measured("memhog-512k")
        _, big_miss, _ = measured("memhog-2m")
        # The miss-rate ladder the footprints were chosen to produce.
        assert big_miss > 0.38
        assert big_miss > small_miss + 0.05
        assert small_miss > hot_miss + 0.05
        assert hot_miss < 0.28


class TestPointerChaseFamily:
    def test_design_intent_is_registered(self):
        mild = get_profile("pchase-mild")
        extreme = get_profile("pchase-extreme")
        assert extreme.pointer_chase_frac > mild.pointer_chase_frac
        assert extreme.dep_distance < mild.dep_distance

    def test_dependent_loads_serialise_execution(self):
        _, _, mild_ipc = measured("pchase-mild")
        _, _, extreme_ipc = measured("pchase-extreme")
        # Three quarters of loads feeding the next address must cost
        # substantial ILP relative to the mild sibling.
        assert extreme_ipc < mild_ipc - 0.3


class TestFamilyRegistryShape:
    @pytest.mark.parametrize(
        "family",
        ["pointer-chase", "branch-hostile", "streaming",
         "high-ilp", "memory-stress"],
    )
    def test_every_stress_member_has_a_profile(self, family):
        for member in get_family(family).members:
            profile = get_profile(member)
            assert profile.name == member
