"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigError
from repro.memory import SetAssocCache


def make_cache(size=1024, assoc=2, line=32):
    return SetAssocCache(size, assoc, line, name="test")


class TestGeometry:
    def test_sets_computed(self):
        cache = make_cache(size=1024, assoc=2, line=32)
        assert cache.n_sets == 16

    def test_non_pow2_line_rejected(self):
        with pytest.raises(ConfigError):
            make_cache(line=48)

    def test_indivisible_assoc_rejected(self):
        with pytest.raises(ConfigError):
            SetAssocCache(96, 5, 32)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            make_cache(size=0)


class TestAccessBehavior:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_hits(self):
        cache = make_cache(line=32)
        cache.access(0x100)
        assert cache.access(0x11C)  # same 32B line
        assert not cache.access(0x120)  # next line

    def test_lru_eviction(self):
        cache = make_cache(size=128, assoc=2, line=32)  # 2 sets
        # Three lines mapping to set 0 (line addresses 0, 2, 4).
        a, b, c = 0x000, 0x080, 0x100
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert not cache.probe(a)
        assert cache.probe(b)
        assert cache.probe(c)

    def test_lru_updated_on_hit(self):
        cache = make_cache(size=128, assoc=2, line=32)
        a, b, c = 0x000, 0x080, 0x100
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b becomes LRU
        cache.access(c)  # evicts b
        assert cache.probe(a)
        assert not cache.probe(b)

    def test_probe_does_not_mutate(self):
        cache = make_cache()
        cache.access(0x40)
        hits, misses = cache.hits, cache.misses
        cache.probe(0x40)
        cache.probe(0x999940)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_invalidate_all(self):
        cache = make_cache()
        cache.access(0x40)
        cache.invalidate_all()
        assert not cache.probe(0x40)

    def test_miss_rate(self):
        cache = make_cache()
        assert cache.miss_rate == 0.0
        cache.access(0x40)
        cache.access(0x40)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(0x40)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.probe(0x40)


class TestFullCoverage:
    def test_full_cache_no_aliasing(self):
        """Distinct lines filling the whole cache must all survive."""
        cache = make_cache(size=1024, assoc=2, line=32)
        lines = [i * 32 for i in range(32)]  # exactly 1024 bytes
        for addr in lines:
            cache.access(addr)
        assert all(cache.probe(addr) for addr in lines)

    def test_working_set_larger_than_cache_thrashes(self):
        cache = make_cache(size=1024, assoc=2, line=32)
        for _ in range(3):
            for addr in range(0, 4096, 32):
                cache.access(addr)
        assert cache.miss_rate == 1.0  # cyclic walk defeats LRU
