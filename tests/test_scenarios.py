"""Scenario corpus tests: rtrace round trips, registry, suites, cache keys."""

import dataclasses
import zlib

import pytest

from repro import simulate
from repro.errors import ScenarioError, WorkloadError
from repro.scenarios import (
    ScenarioSuite,
    WorkloadFamily,
    available_families,
    available_suites,
    corpus_members,
    export_trace,
    family_of,
    get_family,
    get_suite,
    import_trace,
    read_meta,
    register_family,
    register_suite,
    register_trace,
    run_suite,
    unregister_trace,
)
from repro.scenarios.registry import _FAMILIES
from repro.scenarios.rtrace import MAGIC, FrozenTrace
from repro.scenarios.suites import _SUITES
from repro.workloads import (
    clear_workload_cache,
    get_profile,
    register_profile,
    reset_trace_stats,
    trace_build_counts,
    unregister_profile,
    workload,
    workload_for_profile,
)

#: Tiny windows: these tests exercise plumbing, not timing.
N = 600
W = 200


# ----------------------------------------------------------------------
# Portable traces
# ----------------------------------------------------------------------
class TestTraceRoundTrip:
    def test_records_survive_byte_identically(self, tmp_path):
        wl = workload("li")
        path = str(tmp_path / "li.rtrace")
        export_trace(wl, path, 1500, cushion=0)
        imported = import_trace(path)
        originals = [wl.shared_trace().record(i) for i in range(1500)]
        replayed = [imported.shared_trace().record(i) for i in range(1500)]
        assert [
            (r.inst.pc, r.taken, r.mem_addr) for r in originals
        ] == [(r.inst.pc, r.taken, r.mem_addr) for r in replayed]

    def test_replayed_ipc_identical_without_regeneration(self, tmp_path):
        """The acceptance criterion: export, wipe every cache, re-import,
        and the simulated IPC matches without any program/trace rebuild."""
        live = simulate("li", steering="general-balance",
                        n_instructions=N, warmup=W)
        path = str(tmp_path / "li.rtrace")
        export_trace(workload("li"), path, N + W)
        clear_workload_cache()
        reset_trace_stats()
        imported = import_trace(path)
        replayed = simulate(imported, steering="general-balance",
                            n_instructions=N, warmup=W)
        assert replayed.ipc == live.ipc
        assert replayed.cycles == live.cycles
        assert trace_build_counts() == {}  # nothing was decoded

    def test_program_reconstruction_is_structural(self, tmp_path):
        wl = workload("gcc")
        path = str(tmp_path / "gcc.rtrace")
        export_trace(wl, path, 100, cushion=0)
        imported = import_trace(path)
        assert imported.program is not wl.program
        assert imported.program.num_instructions == (
            wl.program.num_instructions
        )
        assert imported.profile == wl.profile
        assert imported.seed == wl.seed

    def test_meta_reports_shape(self, tmp_path):
        path = str(tmp_path / "go.rtrace")
        export_trace(workload("go"), path, 1000, cushion=24)
        meta = read_meta(path)
        assert meta.name == "go"
        assert meta.n_records == 1024
        assert meta.has_profile
        assert "go" in meta.describe()

    def test_frozen_trace_refuses_to_extend(self, tmp_path):
        path = str(tmp_path / "li.rtrace")
        export_trace(workload("li"), path, 200, cushion=0)
        imported = import_trace(path)
        trace = imported.shared_trace()
        assert isinstance(trace, FrozenTrace)
        assert len(trace) == 200
        trace.record(199)  # in range
        with pytest.raises(ScenarioError, match="re-export"):
            trace.record(200)

    def test_import_rename(self, tmp_path):
        path = str(tmp_path / "li.rtrace")
        export_trace(workload("li"), path, 50, cushion=0)
        assert import_trace(path, name="li-variant").name == "li-variant"


class TestTraceFileFormat:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "fake.rtrace"
        path.write_bytes(b"NOTATRACE" + b"\x00" * 32)
        with pytest.raises(ScenarioError, match="magic"):
            import_trace(str(path))

    def test_corrupt_body_rejected(self, tmp_path):
        path = tmp_path / "corrupt.rtrace"
        path.write_bytes(MAGIC + b"\x00garbage\xff")
        with pytest.raises(ScenarioError, match="corrupt"):
            import_trace(str(path))

    def test_future_version_rejected(self, tmp_path):
        import json

        body = json.dumps({"format": "rtrace", "version": 99})
        path = tmp_path / "future.rtrace"
        path.write_bytes(MAGIC + zlib.compress(body.encode()))
        with pytest.raises(ScenarioError, match="newer"):
            import_trace(str(path))

    def test_checksum_mismatch_rejected(self, tmp_path):
        import json

        good = str(tmp_path / "good.rtrace")
        export_trace(workload("li"), good, 50, cushion=0)
        with open(good, "rb") as fh:
            fh.read(len(MAGIC))
            doc = json.loads(zlib.decompress(fh.read()))
        doc["records"]["addr"][0] ^= 4  # flip one address
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(
            MAGIC + zlib.compress(json.dumps(doc).encode())
        )
        with pytest.raises(ScenarioError, match="checksum"):
            import_trace(str(bad))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestFamilyRegistry:
    def test_builtin_families_present(self):
        names = available_families()
        for expected in (
            "specint95",
            "pointer-chase",
            "branch-hostile",
            "streaming",
            "high-ilp",
            "memory-stress",
            "rtrace",
        ):
            assert expected in names

    def test_duplicate_family_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_family(
                WorkloadFamily(
                    name="specint95", description="dup", members=()
                )
            )

    def test_unknown_family_error_lists_available(self):
        with pytest.raises(ScenarioError, match="specint95"):
            get_family("no-such-family")

    def test_members_resolve_as_workloads(self):
        for family_name in ("pointer-chase", "high-ilp"):
            member = get_family(family_name).members[0]
            wl = workload(member)
            assert wl.name == member
            assert wl.program.num_instructions > 0

    def test_family_make_rejects_foreign_member(self):
        with pytest.raises(ScenarioError, match="no member"):
            get_family("pointer-chase").make("gcc")

    def test_family_of(self):
        assert family_of("gcc") == "specint95"
        assert family_of("pchase-heavy") == "pointer-chase"
        assert family_of("nope") is None

    def test_corpus_members_covers_every_family(self):
        corpus = corpus_members()
        assert set(corpus) == set(available_families())
        assert "gcc" in corpus["specint95"]

    def test_custom_family_roundtrip(self):
        profile = dataclasses.replace(
            get_profile("perl"), name="perl-variant"
        )
        register_profile(profile)
        family = register_family(
            WorkloadFamily(
                name="test-family",
                description="one doctored perl",
                members=("perl-variant",),
            )
        )
        try:
            wl = family.make("perl-variant")
            assert wl.profile == profile
            assert workload("perl-variant") is wl  # same cache entry
        finally:
            _FAMILIES.pop("test-family")
            unregister_profile("perl-variant")

    def test_specint_names_are_reserved(self):
        with pytest.raises(WorkloadError, match="reserved"):
            register_profile(get_profile("gcc"))


class TestTraceRegistration:
    def test_registered_trace_resolves_by_name(self, tmp_path):
        path = str(tmp_path / "li.rtrace")
        export_trace(workload("li"), path, N + W)
        registered = register_trace(path, name="li-recorded")
        try:
            assert workload("li-recorded") is registered
            assert family_of("li-recorded") == "rtrace"
            assert "li-recorded" in get_family("rtrace").members
            result = simulate("li-recorded", steering="modulo",
                              n_instructions=N, warmup=W)
            assert result.ipc > 0
        finally:
            unregister_trace("li-recorded")
        with pytest.raises(WorkloadError):
            workload("li-recorded")

    def test_seed_mismatch_rejected(self, tmp_path):
        """A trace is one recorded execution: replaying it under another
        seed must fail loudly, not alias the same records per seed."""
        path = str(tmp_path / "li.rtrace")
        export_trace(workload("li", seed=0), path, 50, cushion=0)
        register_trace(path, name="li-seeded")
        try:
            assert workload("li-seeded", seed=0).seed == 0
            with pytest.raises(ScenarioError, match="recorded at seed 0"):
                workload("li-seeded", seed=3)
        finally:
            unregister_trace("li-seeded")

    def test_duplicate_and_shadowing_names_rejected(self, tmp_path):
        path = str(tmp_path / "li.rtrace")
        export_trace(workload("li"), path, 50, cushion=0)
        with pytest.raises(ScenarioError, match="SpecInt95"):
            register_trace(path)  # recorded name "li" shadows Table 1
        register_trace(path, name="li-once")
        try:
            with pytest.raises(ScenarioError, match="already registered"):
                register_trace(path, name="li-once")
            with pytest.raises(ScenarioError, match="already registered"):
                register_trace(path, name="pchase-heavy")
        finally:
            unregister_trace("li-once")


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
class TestSuites:
    def test_builtin_suites_present(self):
        names = available_suites()
        for expected in (
            "paper-table1",
            "branchy",
            "stress-memory",
            "comm-bound",
            "high-ilp",
            "smoke",
        ):
            assert expected in names

    def test_points_expand_full_grid(self):
        suite = get_suite("smoke")
        points = suite.points()
        assert len(points) == len(suite.benches) * len(suite.schemes)
        assert {p.bench for p in points} == set(suite.benches)
        assert all(p.n_instructions == suite.n_instructions for p in points)

    def test_points_accept_overrides(self):
        points = get_suite("smoke").points(
            n_instructions=N, warmup=W, seeds=(0, 1)
        )
        assert len(points) == 2 * len(get_suite("smoke").points())
        assert all(p.n_instructions == N and p.warmup == W for p in points)

    def test_points_honour_zero_warmup(self):
        """warmup=0 is a legitimate cold-start request, not 'use the
        suite default'."""
        points = get_suite("smoke").points(n_instructions=N, warmup=0)
        assert all(p.warmup == 0 for p in points)

    def test_unknown_suite_error_lists_available(self):
        with pytest.raises(ScenarioError, match="smoke"):
            get_suite("no-such-suite")

    def test_duplicate_suite_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_suite(
                ScenarioSuite(
                    name="smoke",
                    description="dup",
                    benches=("gcc",),
                    schemes=("modulo",),
                )
            )

    def test_run_suite_produces_populated_store(self, tmp_path):
        store = str(tmp_path / "smoke.json")
        run = run_suite("smoke", n_instructions=N, warmup=W, store=store)
        assert run.n_simulated == len(get_suite("smoke").points())
        assert run.n_cached == 0
        assert all(r.result.ipc > 0 for r in run.results)
        from repro.analysis import CampaignResults

        stored = CampaignResults.load(store)
        assert len(stored) == len(run.results)

    def test_run_suite_resume_skips_everything(self, tmp_path):
        store = str(tmp_path / "smoke.json")
        run_suite("smoke", n_instructions=N, warmup=W, store=store)
        again = run_suite(
            "smoke", n_instructions=N, warmup=W, store=store, resume=True
        )
        assert again.n_simulated == 0
        assert again.n_cached == len(get_suite("smoke").points())

    def test_suites_reference_known_corpus_and_schemes(self):
        """Every built-in suite must expand to resolvable points."""
        from repro.core.steering import available_schemes

        schemes = set(available_schemes())
        corpus = {
            member
            for members in corpus_members().values()
            for member in members
        }
        for name in available_suites():
            suite = get_suite(name)
            assert set(suite.schemes) <= schemes, name
            assert set(suite.benches) <= corpus, name


# ----------------------------------------------------------------------
# Workload cache identity (satellite fix)
# ----------------------------------------------------------------------
class TestWorkloadCacheIdentity:
    def test_same_name_different_profile_not_conflated(self):
        """A profile reusing a benchmark name must not be served the
        stale cached program of the other profile."""
        base = workload("go")
        doctored = dataclasses.replace(
            get_profile("go"), avg_block_size=10.0, n_blocks=24
        )
        variant = workload_for_profile(doctored)
        assert variant.name == "go"
        assert variant is not base
        assert variant.program.num_instructions != (
            base.program.num_instructions
        )
        # And the original is still cached untouched.
        assert workload("go") is base

    def test_registered_profile_reuses_cache_by_identity(self):
        profile = dataclasses.replace(
            get_profile("li"), name="li-cachetest"
        )
        register_profile(profile)
        try:
            first = workload("li-cachetest")
            assert workload("li-cachetest") is first
            # Replacing the registration invalidates resolution, not the
            # old entry: the new profile maps to a fresh workload.
            doctored = dataclasses.replace(profile, dep_distance=2.0)
            register_profile(doctored, replace=True)
            second = workload("li-cachetest")
            assert second is not first
            assert second.profile == doctored
        finally:
            unregister_profile("li-cachetest")

    def test_seed_still_part_of_key(self):
        assert workload("gcc", seed=1) is not workload("gcc", seed=0)
        assert workload("gcc", seed=1) is workload("gcc", seed=1)


# ----------------------------------------------------------------------
# Suite smoke through the CLI surface
# ----------------------------------------------------------------------
class TestScenariosCLI:
    def test_scenarios_list_and_run(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "pointer-chase" in out
        assert "paper-table1" in out

        store = str(tmp_path / "cli.json")
        args = [
            "scenarios", "run", "smoke",
            "-n", str(N), "-w", str(W), "--json", store,
        ]
        assert main(args) == 0
        assert "wrote" in capsys.readouterr().out
        assert main([*args, "--resume"]) == 0
        assert "reused 4 stored point(s)" in capsys.readouterr().out

    def test_trace_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "m88ksim.rtrace")
        assert main([
            "trace", "export", "-b", "m88ksim", "-o", path, "-r", "800",
        ]) == 0
        assert main(["trace", "info", path]) == 0
        assert "m88ksim" in capsys.readouterr().out
        assert main([
            "trace", "import", path, "--name", "m88ksim-cli", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "replay check" in out
        unregister_trace("m88ksim-cli")

    def test_resume_without_store_is_an_error(self, capsys):
        from repro.cli import main

        code = main([
            "scenarios", "run", "smoke", "-n", str(N), "-w", str(W),
            "--resume",
        ])
        assert code == 2
        assert "--resume needs a store" in capsys.readouterr().out
