"""Shared fixtures: small deterministic workloads and fast simulations."""

from __future__ import annotations

import pytest

from repro import ProcessorConfig, simulate, simulate_baseline
from repro.workloads import workload

#: Window sizes for integration tests: big enough for steady state,
#: small enough to keep the suite fast.
FAST_N = 3000
FAST_WARMUP = 1000


@pytest.fixture(scope="session")
def gcc_workload():
    """The gcc stand-in program (session-scoped; programs are immutable)."""
    return workload("gcc")


@pytest.fixture(scope="session")
def li_workload():
    """The li stand-in program."""
    return workload("li")


@pytest.fixture(scope="session")
def tiny_program(gcc_workload):
    """A static program for structural tests."""
    return gcc_workload.program


def _fast_sim(bench, scheme, **kwargs):
    """Short simulation with uniform fast parameters."""
    kwargs.setdefault("n_instructions", FAST_N)
    kwargs.setdefault("warmup", FAST_WARMUP)
    return simulate(bench, steering=scheme, **kwargs)


def _fast_base(bench, **kwargs):
    """Short baseline simulation."""
    kwargs.setdefault("n_instructions", FAST_N)
    kwargs.setdefault("warmup", FAST_WARMUP)
    return simulate_baseline(bench, **kwargs)


@pytest.fixture(scope="session")
def fast_sim():
    """The short-simulation helper, exposed as a fixture.

    Test modules must not import from conftest (pytest collects them as
    top-level modules, so relative imports fail); they request this
    fixture and call it like the plain function it wraps.
    """
    return _fast_sim


@pytest.fixture(scope="session")
def fast_base():
    """The short-baseline helper, exposed as a fixture (see fast_sim)."""
    return _fast_base


@pytest.fixture(scope="session")
def gcc_general_result():
    """One shared general-balance run on gcc (used by several tests)."""
    return _fast_sim("gcc", "general-balance")


@pytest.fixture(scope="session")
def gcc_base_result():
    """One shared baseline run on gcc."""
    return _fast_base("gcc")


@pytest.fixture()
def default_config():
    """A fresh clustered-machine configuration."""
    return ProcessorConfig.default()
