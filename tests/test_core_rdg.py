"""RDG and backward-slice tests, including the paper's Figure 2 example.

The paper illustrates its terminology with this C loop::

    for (i = 0; i < N; i++) {
        if (C[i] != 0) A[i] = B[i] / C[i];
        else           A[i] = 0;
    }

We encode the same assembly (memory operations merged with their address
computation, as in our ISA) and check that the computed LdSt slice,
Br slice and backward slices match the figure.
"""

import pytest

from repro.core.rdg import (
    backward_slice,
    br_slice,
    build_rdg,
    extend_with_neighbors,
    ldst_slice,
    reaching_definitions,
)
from repro.isa import Instruction, Opcode
from repro.workloads import (
    BasicBlock,
    BranchBehavior,
    MemBehavior,
    StaticProgram,
    workload,
)

# Register assignment for the Figure 2 program.
RA, RB, RC = 1, 2, 3  # array base addresses
RI = 9                # induction variable i*4
RBI, RCI, RAI = 15, 16, 17  # loaded/computed values

PC_MOV_I = 0x1000    # 1: MOV 0 -> Ri
PC_LD_B = 0x1004     # 2+3: LD B[i]
PC_LD_C = 0x1008     # 4+5: LD C[i]
PC_BEQZ = 0x100C     # 6: BEQZ RCi -> l1
PC_DIV = 0x1010      # 7: DIV RBi/RCi -> RAi
PC_JMP = 0x1014      # 8: JMP l2
PC_MOV_A = 0x1018    # 9: MOV 0 -> RAi
PC_ST = 0x101C       # 10+11: ST RAi -> A[i]
PC_ADD_I = 0x1020    # 12: ADD Ri+4 -> Ri
PC_BNE = 0x1024      # 13: BNE Ri -> for


@pytest.fixture(scope="module")
def figure2_program():
    blocks = [
        BasicBlock(
            0, [Instruction(PC_MOV_I, Opcode.MOV, RI, ())], fall_succ=1
        ),
        BasicBlock(
            1,
            [
                Instruction(PC_LD_B, Opcode.LOAD, RBI, (RB, RI)),
                Instruction(PC_LD_C, Opcode.LOAD, RCI, (RC, RI)),
                Instruction(PC_BEQZ, Opcode.BEQ, None, (RCI,), target=PC_MOV_A),
            ],
            taken_succ=3,
            fall_succ=2,
        ),
        BasicBlock(
            2,
            [
                Instruction(PC_DIV, Opcode.DIV, RAI, (RBI, RCI)),
                Instruction(PC_JMP, Opcode.JMP, None, (), target=PC_ST),
            ],
            taken_succ=4,
        ),
        BasicBlock(
            3, [Instruction(PC_MOV_A, Opcode.MOV, RAI, ())], fall_succ=4
        ),
        BasicBlock(
            4,
            [
                Instruction(PC_ST, Opcode.STORE, None, (RA, RI, RAI)),
                Instruction(PC_ADD_I, Opcode.ADDI, RI, (RI,)),
                Instruction(PC_BNE, Opcode.BNE, None, (RI,), target=PC_LD_B),
            ],
            taken_succ=1,
            fall_succ=0,
        ),
    ]
    return StaticProgram(
        "figure2",
        blocks,
        branch_behaviors={
            PC_BEQZ: BranchBehavior("biased", taken_prob=0.5),
            PC_BNE: BranchBehavior("loop", trip=8),
        },
        mem_behaviors={
            PC_LD_B: MemBehavior("stream", base=0, region=4096),
            PC_LD_C: MemBehavior("stream", base=4096, region=4096),
            PC_ST: MemBehavior("stream", base=8192, region=4096),
        },
    )


class TestFigure2(object):
    def test_rdg_edges(self, figure2_program):
        graph = build_rdg(figure2_program)
        # The induction variable feeds both loads, the store and itself.
        assert graph.has_edge(PC_ADD_I, PC_LD_B)
        assert graph.has_edge(PC_ADD_I, PC_LD_C)
        assert graph.has_edge(PC_ADD_I, PC_ST)
        assert graph.has_edge(PC_ADD_I, PC_BNE)
        # Loaded values feed the divide and the branch.
        assert graph.has_edge(PC_LD_B, PC_DIV)
        assert graph.has_edge(PC_LD_C, PC_DIV)
        assert graph.has_edge(PC_LD_C, PC_BEQZ)
        # The store's *data* operand creates no edge into the store node.
        assert not graph.has_edge(PC_DIV, PC_ST)
        assert not graph.has_edge(PC_MOV_A, PC_ST)

    def test_backward_slice_of_loop_branch(self, figure2_program):
        """Figure 2: backward slice w.r.t. node 13 is the Ri chain."""
        graph = build_rdg(figure2_program)
        assert backward_slice(graph, PC_BNE) == {PC_MOV_I, PC_ADD_I, PC_BNE}

    def test_ldst_slice(self, figure2_program):
        """The LdSt slice is the address chains: loads, store, Ri chain."""
        assert ldst_slice(figure2_program) == {
            PC_MOV_I,
            PC_LD_B,
            PC_LD_C,
            PC_ST,
            PC_ADD_I,
        }

    def test_br_slice(self, figure2_program):
        """The Br slice: both branches, the C load, and the Ri chain."""
        assert br_slice(figure2_program) == {
            PC_MOV_I,
            PC_LD_C,  # its value decides BEQZ; B's load stays outside
            PC_ADD_I,
            PC_BEQZ,
            PC_BNE,
        }

    def test_div_is_in_neither_slice(self, figure2_program):
        """The divide only produces store *data* — outside both slices."""
        assert PC_DIV not in ldst_slice(figure2_program)
        assert PC_DIV not in br_slice(figure2_program)
        assert PC_MOV_A not in ldst_slice(figure2_program)

    def test_neighbor_extension_grows_slice(self, figure2_program):
        graph = build_rdg(figure2_program)
        base = ldst_slice(figure2_program, graph)
        extended = extend_with_neighbors(graph, base, hops=1)
        assert base < extended
        assert PC_DIV in extended  # successor of the loads

    def test_backward_slice_unknown_pc(self, figure2_program):
        graph = build_rdg(figure2_program)
        with pytest.raises(KeyError):
            backward_slice(graph, 0x9999)


class TestReachingDefinitions:
    def test_entry_block_sees_loop_definitions(self, figure2_program):
        in_sets = reaching_definitions(figure2_program)
        # Block 1 (loop body) is reached by both the initial MOV and the
        # loop-carried ADD definition of Ri.
        assert in_sets[1][RI] == frozenset({PC_MOV_I, PC_ADD_I})

    def test_diamond_merges_definitions(self, figure2_program):
        in_sets = reaching_definitions(figure2_program)
        # Block 4 joins the two arms: RAi defined by DIV or by MOV.
        assert in_sets[4][RAI] == frozenset({PC_DIV, PC_MOV_A})


class TestOnGeneratedPrograms:
    def test_slices_are_subsets_of_program(self):
        program = workload("li").program
        graph = build_rdg(program)
        all_pcs = {inst.pc for inst in program.all_instructions()}
        assert ldst_slice(program, graph) <= all_pcs
        assert br_slice(program, graph) <= all_pcs

    def test_memory_instructions_in_own_slice(self):
        program = workload("gcc").program
        slice_pcs = ldst_slice(program)
        for inst in program.all_instructions():
            if inst.is_memory:
                assert inst.pc in slice_pcs

    def test_branches_in_own_slice(self):
        program = workload("gcc").program
        slice_pcs = br_slice(program)
        for inst in program.all_instructions():
            if inst.is_conditional:
                assert inst.pc in slice_pcs
