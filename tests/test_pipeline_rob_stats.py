"""Unit tests for the ROB and the statistics machinery."""

import pytest

from repro.errors import SimulationError
from repro.isa import DynInst, Instruction, Opcode
from repro.pipeline import ReorderBuffer, SimStats
from repro.pipeline.stats import BALANCE_BINS, BALANCE_RANGE


def dyn(seq, pc=0x1000):
    return DynInst(seq, Instruction(pc, Opcode.ADD, 5, (1,)))


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        a, b = dyn(0), dyn(1)
        rob.push(a)
        rob.push(b)
        assert rob.head is a
        assert rob.pop() is a
        assert rob.pop() is b
        assert rob.empty

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.push(dyn(0))
        rob.push(dyn(1))
        assert rob.full
        with pytest.raises(SimulationError):
            rob.push(dyn(2))

    def test_program_order_enforced(self):
        rob = ReorderBuffer(4)
        rob.push(dyn(5))
        with pytest.raises(SimulationError):
            rob.push(dyn(3))

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            ReorderBuffer(2).pop()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            ReorderBuffer(0)

    def test_len(self):
        rob = ReorderBuffer(8)
        rob.push(dyn(0))
        assert len(rob) == 1


class TestSimStats:
    def test_cycle_accounting(self):
        stats = SimStats()
        stats.on_cycle(3, [1, 2])
        stats.on_cycle(2, [4, 4])
        assert stats.cycles == 2
        assert stats.replication_sum == 5

    def test_balance_histogram_binning(self):
        stats = SimStats()
        stats.on_cycle(0, [0, 5])   # diff +5
        stats.on_cycle(0, [5, 0])   # diff -5
        stats.on_cycle(0, [0, 0])   # diff 0
        assert stats.balance_hist[BALANCE_RANGE + 5] == 1
        assert stats.balance_hist[BALANCE_RANGE - 5] == 1
        assert stats.balance_hist[BALANCE_RANGE] == 1

    def test_balance_histogram_clamps(self):
        stats = SimStats()
        stats.on_cycle(0, [0, 50])
        stats.on_cycle(0, [50, 0])
        assert stats.balance_hist[BALANCE_BINS - 1] == 1
        assert stats.balance_hist[0] == 1

    def test_commit_classifies(self):
        stats = SimStats()
        load = DynInst(0, Instruction(0x1000, Opcode.LOAD, 5, (1,)))
        load.in_ldst_slice = True
        stats.on_commit(load)
        stats.on_commit(dyn(1))
        assert stats.committed == 2
        assert stats.committed_by_class == {"LOAD": 1, "SIMPLE_INT": 1}
        assert stats.committed_ldst_slice == 1


class TestSimResult:
    def test_result_derivations(self, gcc_general_result):
        result = gcc_general_result
        assert result.instructions > 0
        assert result.ipc == pytest.approx(
            result.instructions / result.cycles
        )
        assert 0 <= result.comms_per_instr
        assert (
            result.critical_comms_per_instr <= result.comms_per_instr
        )
        assert result.noncritical_comms_per_instr == pytest.approx(
            result.comms_per_instr - result.critical_comms_per_instr
        )

    def test_balance_distribution_normalized(self, gcc_general_result):
        assert sum(gcc_general_result.balance_distribution) == pytest.approx(
            1.0
        )

    def test_balance_at_clamps(self, gcc_general_result):
        result = gcc_general_result
        assert result.balance_at(99) == result.balance_at(10)
        assert result.balance_at(-99) == result.balance_at(-10)

    def test_speedup_over_self_is_zero(self, gcc_general_result):
        assert gcc_general_result.speedup_over(
            gcc_general_result
        ) == pytest.approx(0.0)

    def test_summary_contains_key_fields(self, gcc_general_result):
        text = gcc_general_result.summary()
        assert "gcc" in text
        assert "ipc=" in text
