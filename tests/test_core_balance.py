"""Unit tests for the I1/I2 imbalance estimator (paper §3.5)."""

import pytest

from repro.core.balance import ImbalanceEstimator
from repro.errors import ConfigError


def make(window=16, threshold=8):
    return ImbalanceEstimator(window=window, threshold=threshold)


class TestI1:
    def test_steering_updates_counter(self):
        est = make()
        est.on_steer(0)
        est.on_steer(0)
        est.on_steer(1)
        assert est.counter == 1

    def test_counter_sign_convention(self):
        est = make()
        for _ in range(10):
            est.on_steer(0)
        assert est.overloaded_cluster == 0
        assert est.preferred_cluster == 1

    def test_threshold_detection(self):
        est = make(threshold=8)
        for _ in range(8):
            est.on_steer(0)
        assert not est.strongly_imbalanced  # |8| is not > 8
        est.on_steer(0)
        assert est.strongly_imbalanced

    def test_feedback_loop_self_corrects(self):
        """Steering to the preferred cluster drives the counter back."""
        est = make(threshold=8)
        for _ in range(20):
            est.on_steer(0)
        assert est.strongly_imbalanced
        for _ in range(20):
            est.on_steer(est.preferred_cluster)
        assert abs(est.counter) <= 8


class TestI2:
    def test_balanced_when_both_within_width(self):
        est = make()
        assert est.instant_imbalance([3, 2]) == 0
        assert est.instant_imbalance([4, 4]) == 0

    def test_balanced_when_both_overloaded(self):
        """Both clusters issuing at full rate counts as balanced."""
        est = make()
        assert est.instant_imbalance([9, 8]) == 0

    def test_cluster0_overloaded(self):
        est = make()
        assert est.instant_imbalance([7, 1]) == 6

    def test_cluster1_overloaded(self):
        est = make()
        assert est.instant_imbalance([1, 7]) == -6

    def test_window_average_folds_into_counter(self):
        est = make(window=4)
        for _ in range(4):
            est.on_cycle([8, 0])  # sample +8 each cycle
        assert est.counter == 8

    def test_counter_untouched_mid_window(self):
        est = make(window=16)
        for _ in range(15):
            est.on_cycle([8, 0])
        assert est.counter == 0

    def test_mixed_samples_average(self):
        est = make(window=2)
        est.on_cycle([8, 0])   # +8
        est.on_cycle([0, 8])   # -8
        assert est.counter == 0


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ConfigError):
            ImbalanceEstimator(window=0)

    def test_bad_threshold(self):
        with pytest.raises(ConfigError):
            ImbalanceEstimator(threshold=-1)

    def test_reset(self):
        est = make()
        est.on_steer(0)
        est.on_cycle([9, 0])
        est.reset()
        assert est.counter == 0
        assert not est.strongly_imbalanced


class TestPaperParameters:
    def test_defaults_match_paper(self):
        est = ImbalanceEstimator()
        assert est.window == 16
        assert est.threshold == 8
