"""Unit tests for the memory hierarchy timing and port arbitration."""

import pytest

from repro.memory import MemoryHierarchy, MemoryTiming, SetAssocCache


def small_hierarchy(ports=3):
    return MemoryHierarchy(
        l1i=SetAssocCache(1024, 2, 32, name="l1i"),
        l1d=SetAssocCache(1024, 2, 32, name="l1d"),
        l2=SetAssocCache(4096, 4, 64, name="l2"),
        timing=MemoryTiming(),
        dcache_ports=ports,
    )


class TestLatencies:
    def test_l1_hit_latency(self):
        h = small_hierarchy()
        h.load_latency(0x40)  # fill
        assert h.load_latency(0x40) == 1

    def test_l2_hit_latency(self):
        h = small_hierarchy()
        h.l2.access(0x40)  # pre-fill L2 only
        latency = h.load_latency(0x40)
        assert latency == 1 + 6

    def test_memory_latency_includes_chunks(self):
        h = small_hierarchy()
        latency = h.load_latency(0x40)  # cold everywhere
        # 1 (L1) + 6 (L2 miss path) + 16 + 3*2 (64B line over 16B bus)
        assert latency == 1 + 6 + 16 + 6

    def test_ifetch_path(self):
        h = small_hierarchy()
        cold = h.ifetch_latency(0x1000)
        warm = h.ifetch_latency(0x1000)
        assert cold > warm == 1

    def test_store_access_updates_tags(self):
        h = small_hierarchy()
        h.store_access(0x80)
        assert h.l1d.probe(0x80)


class TestPorts:
    def test_port_budget_per_cycle(self):
        h = small_hierarchy(ports=2)
        assert h.claim_dcache_port(10)
        assert h.claim_dcache_port(10)
        assert not h.claim_dcache_port(10)

    def test_ports_replenish_next_cycle(self):
        h = small_hierarchy(ports=1)
        assert h.claim_dcache_port(10)
        assert not h.claim_dcache_port(10)
        assert h.claim_dcache_port(11)

    def test_default_three_ports(self):
        h = MemoryHierarchy()
        assert h.dcache_ports == 3
        claims = [h.claim_dcache_port(0) for _ in range(4)]
        assert claims == [True, True, True, False]


class TestDefaults:
    def test_table2_geometry(self):
        h = MemoryHierarchy()
        assert h.l1d.size_bytes == 64 * 1024
        assert h.l1d.assoc == 2
        assert h.l1d.line_bytes == 32
        assert h.l2.size_bytes == 256 * 1024
        assert h.l2.assoc == 4
        assert h.l2.line_bytes == 64

    def test_reset_stats(self):
        h = small_hierarchy()
        h.load_latency(0x40)
        h.ifetch_latency(0x40)
        h.reset_stats()
        assert h.l1d.accesses == 0
        assert h.l1i.accesses == 0
        assert h.l2.accesses == 0
