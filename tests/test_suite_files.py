"""Tests for data-file suites and the new registry/suite CLI commands."""

import json

import pytest

import repro.scenarios as scenarios
from repro.analysis.campaign import CampaignResults
from repro.cli import main
from repro.spec import SuiteSpec
from repro.workloads import FIGURE_ORDER

N = "400"
W = "120"


# ----------------------------------------------------------------------
# Checked-in data-file suites
# ----------------------------------------------------------------------
class TestDataFileSuites:
    def test_data_dir_found(self):
        assert scenarios.suite_data_dir() is not None

    def test_paper_table1_loaded_from_file(self):
        suite = scenarios.get_suite("paper-table1")
        assert suite.benches == FIGURE_ORDER
        assert "modulo" in suite.schemes
        assert suite.n_instructions == 10000

    def test_smoke_loaded_from_file(self):
        suite = scenarios.get_suite("smoke")
        assert suite.benches == ("gcc", "pchase-heavy")
        assert len(suite.points()) == 4

    def test_registered_suite_equals_its_file(self):
        directory = scenarios.suite_data_dir()
        for name in scenarios.DATA_FILE_SUITES:
            loaded = scenarios.load_suite_file(f"{directory}/{name}.json")
            assert loaded == scenarios.get_suite(name)

    def test_export_round_trips(self, tmp_path):
        path = str(tmp_path / "exported.json")
        suite = scenarios.export_suite("paper-table1", path)
        assert SuiteSpec.load(path) == suite
        # The file is plain JSON a human can diff and edit.
        data = json.loads(open(path).read())
        assert data["format"] == "repro-suite"
        assert data["benches"] == list(FIGURE_ORDER)

    def test_exported_suite_expands_identically(self, tmp_path):
        path = str(tmp_path / "pt1.json")
        scenarios.export_suite("paper-table1", path)
        assert (
            SuiteSpec.load(path).points()
            == scenarios.get_suite("paper-table1").points()
        )

    def test_register_suite_file(self, tmp_path):
        path = str(tmp_path / "custom.json")
        SuiteSpec(
            name="custom-suite-file-test",
            description="registered from a file",
            benches=("gcc",),
            schemes=("modulo",),
            overrides=({"clusters.0.iq_size": 128},),
        ).save(path)
        suite = scenarios.register_suite_file(path)
        try:
            assert scenarios.get_suite("custom-suite-file-test") is suite
            (point,) = suite.points(n_instructions=500, warmup=100)
            assert point.overrides == (("clusters.0.iq_size", 128),)
        finally:
            scenarios.suites._SUITES.pop("custom-suite-file-test", None)


# ----------------------------------------------------------------------
# CLI: machines/schemes listings
# ----------------------------------------------------------------------
class TestListingCommands:
    def test_machines_list(self, capsys):
        assert main(["machines", "list"]) == 0
        out = capsys.readouterr().out
        assert "clustered" in out
        assert "baseline" in out
        assert "bypass-latency-<N>" in out
        # one-line descriptions present
        assert "Table 2" in out

    def test_schemes_list(self, capsys):
        assert main(["schemes", "list"]) == 0
        out = capsys.readouterr().out
        assert "general-balance [context]:" in out
        assert "modulo [context]:" in out
        # Descriptions come from the scheme docstrings.
        for line in out.splitlines():
            if line.strip().startswith("modulo "):
                assert len(line.split(":", 1)[1].strip()) > 0


# ----------------------------------------------------------------------
# CLI: suite export / run, nested overrides end to end
# ----------------------------------------------------------------------
class TestSuiteCli:
    def test_export_then_run_resumes_identically(self, tmp_path, capsys):
        suite_file = str(tmp_path / "smoke-export.json")
        store = str(tmp_path / "store.json")
        assert main(["suite", "export", "smoke", "-o", suite_file]) == 0
        # First run from the registered suite via `scenarios run`.
        assert main(
            ["scenarios", "run", "smoke", "-n", N, "-w", W, "--json", store]
        ) == 0
        capsys.readouterr()
        # Re-running from the exported data file reuses every point.
        assert main(
            ["suite", "run", suite_file, "-n", N, "-w", W,
             "--json", store, "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "reused 4 stored point(s), simulated 0" in out

    def test_suite_run_unknown_file(self, tmp_path):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            main(["suite", "run", str(tmp_path / "missing.json")])

    def test_campaign_nested_override_from_cli(self, tmp_path, capsys):
        store = str(tmp_path / "o.json")
        assert main(
            ["campaign", "-b", "gcc", "-s", "modulo",
             "-O", "clusters.0.iq_size=16", "-n", N, "-w", W,
             "--json", store]
        ) == 0
        (run,) = CampaignResults.load_json(store)
        assert run.point.overrides == (("clusters.0.iq_size", 16),)

    def test_run_nested_override_from_cli(self, capsys):
        assert main(
            ["run", "-b", "gcc", "-s", "modulo",
             "-O", "clusters.0.iq_size=16", "-n", N, "-w", W]
        ) == 0
        assert "scheme IPC" in capsys.readouterr().out

    def test_suite_file_nested_override_runs(self, tmp_path, capsys):
        """A nested override is expressible from a suite data file."""
        suite_file = str(tmp_path / "ablate.json")
        store = str(tmp_path / "ablate-store.json")
        SuiteSpec(
            name="ablate-cli",
            description="nested override via data file",
            benches=("gcc",),
            schemes=("modulo",),
            overrides=({"clusters.0.iq_size": 16},),
            n_instructions=400,
            warmup=120,
        ).save(suite_file)
        assert main(["suite", "run", suite_file, "--json", store]) == 0
        (run,) = CampaignResults.load_json(store)
        assert run.point.overrides == (("clusters.0.iq_size", 16),)
