"""Tests for the perf-profile ledger subsystem (repro.perf).

The acceptance anchors: a synthetic 2x slowdown must be flagged, pure
noise at 15% std must pass, an improvement must never fail the gate,
and labels *removed* from the candidate must be reported explicitly
(the vanished-label regression the legacy gate's callers hit).  The
statistical kernels are pinned against reference values computed with
scipy (not available in CI, hence the pure-python implementations).
"""

from __future__ import annotations

import json
import random

import pytest

from repro import perf
from repro.errors import ConfigError, PerfError
from repro.perf.detect import DetectorConfig
from repro.perf.stats import (
    mann_whitney_u,
    student_t_sf,
    welch_t,
)

COMMIT_A = "a" * 40
COMMIT_B = "b" * 40
COMMIT_C = "c" * 40


def gauss(seed: int, mean: float, std: float, n: int):
    rng = random.Random(seed)
    return tuple(rng.gauss(mean, std) for _ in range(n))


def metric(label="ipc", samples=(1.0,), **kwargs):
    return perf.Metric(label=label, samples=tuple(samples), **kwargs)


def profile(metrics, suite="core", commit=COMMIT_A, when="2026-08-01", **kw):
    return perf.Profile(
        suite=suite,
        metrics=tuple(metrics),
        provenance=perf.Provenance(
            commit=commit, recorded_at=f"{when}T00:00:00Z", host="test",
            **kw,
        ),
    )


class TestStats:
    """Pinned against scipy reference values (see module docstring)."""

    A = (1.02, 0.98, 1.05, 0.99, 1.01, 0.97, 1.03, 1.00)
    B = (1.11, 1.09, 1.14, 1.08, 1.12, 1.10, 1.13, 1.07)

    def test_welch_matches_scipy_reference(self):
        t, p = welch_t(self.A, self.B)
        assert t == pytest.approx(-7.709610576293408, rel=1e-9)
        assert p == pytest.approx(2.1998521912936034e-06, rel=1e-6)

    def test_welch_small_sample_reference(self):
        t, p = welch_t((1.0, 2.0, 3.0, 4.0), (1.5, 2.5, 3.5, 4.5))
        assert t == pytest.approx(-0.5477225575051662, rel=1e-9)
        assert p == pytest.approx(0.6036450565101362, rel=1e-9)

    def test_mann_whitney_matches_scipy_reference(self):
        u, p = mann_whitney_u(self.A, self.B)
        assert u == 0.0
        assert p == pytest.approx(0.0009391056991171899, rel=1e-9)

    def test_mann_whitney_tie_correction(self):
        a = (1.0, 1.0, 2.0, 2.0, 3.0, 3.0)
        b = (1.0, 2.0, 2.0, 3.0, 3.0, 3.0)
        u, p = mann_whitney_u(a, b)
        assert u == 14.0
        assert p == pytest.approx(0.5504668540589887, rel=1e-9)

    def test_student_t_sf_reference(self):
        assert student_t_sf(2.0, 5.0) == pytest.approx(
            0.050969739414929174, rel=1e-9
        )

    def test_degenerate_inputs(self):
        # Identical zero-variance samples: exact equality, p = 1.
        assert welch_t((2.0, 2.0), (2.0, 2.0))[1] == 1.0
        # Zero variance, different means: exact difference, p = 0.
        assert welch_t((2.0, 2.0), (3.0, 3.0))[1] == 0.0
        # All-tied ranks: no evidence either way.
        assert mann_whitney_u((1.0, 1.0), (1.0, 1.0))[1] == 1.0


class TestDetector:
    def compare(self, base_samples, cand_samples, config=None, **metric_kw):
        baseline = profile([metric(samples=base_samples, **metric_kw)])
        candidate = profile(
            [metric(samples=cand_samples, **metric_kw)],
            commit=COMMIT_B, when="2026-08-02",
        )
        comparison = perf.compare_profiles(baseline, candidate, config)
        return comparison, comparison.deltas[0]

    def test_2x_regression_is_flagged(self):
        # The acceptance anchor: a synthetic 2x slowdown (half the
        # instr/sec) must fail the gate.
        comparison, delta = self.compare(
            gauss(1, 1.0, 0.05, 10), gauss(2, 0.5, 0.025, 10)
        )
        assert delta.verdict == "degraded"
        assert delta.method == "mannwhitney"
        assert delta.fails
        assert not comparison.ok

    def test_noise_at_15pct_std_passes(self):
        # Same distribution, std = 15% of mean — the BENCH_core.json
        # noise level the old 30%-ratio gate could trip on.
        comparison, delta = self.compare(
            gauss(3, 1.0, 0.15, 10), gauss(4, 1.0, 0.15, 10)
        )
        assert delta.verdict == "stable"
        assert comparison.ok

    def test_improvement_never_fails(self):
        comparison, delta = self.compare(
            gauss(5, 1.0, 0.05, 10), gauss(6, 2.0, 0.05, 10)
        )
        assert delta.verdict == "improved"
        assert not delta.fails
        assert comparison.ok

    def test_min_effect_floor_passes_tiny_significant_shifts(self):
        # 1% worse with near-zero variance: overwhelmingly significant,
        # but below the 5% minimum-effect floor -> must not fail.
        comparison, delta = self.compare(
            gauss(7, 1.0, 0.001, 20), gauss(8, 0.99, 0.001, 20)
        )
        assert delta.p_value < 0.01
        assert delta.verdict == "stable"
        assert comparison.ok

    def test_welch_used_for_small_repeat_counts(self):
        _, delta = self.compare(
            gauss(9, 1.0, 0.02, 3), gauss(10, 0.5, 0.01, 3)
        )
        assert delta.method == "welch"
        assert delta.verdict == "degraded"

    def test_ratio_fallback_for_sample_starved_labels(self):
        _, degraded = self.compare((1.0,), (0.5,))
        assert degraded.method == "ratio"
        assert degraded.verdict == "degraded"
        assert degraded.fails
        _, mild = self.compare((1.0,), (0.9,))
        assert mild.verdict == "stable"
        _, improved = self.compare((1.0,), (2.0,))
        assert improved.verdict == "improved"

    def test_direction_lower_is_better(self):
        # Wall-clock seconds: a higher candidate mean is the regression.
        _, delta = self.compare(
            gauss(11, 1.0, 0.02, 8), gauss(12, 2.0, 0.04, 8),
            direction="lower", label="seconds",
        )
        assert delta.verdict == "degraded"
        _, delta = self.compare(
            gauss(13, 2.0, 0.04, 8), gauss(14, 1.0, 0.02, 8),
            direction="lower", label="seconds",
        )
        assert delta.verdict == "improved"

    def test_new_label_reported_never_gated(self):
        baseline = profile([metric("old", (1.0,))])
        candidate = profile(
            [metric("old", (1.0,)), metric("fresh", (5.0,))],
            commit=COMMIT_B,
        )
        comparison = perf.compare_profiles(baseline, candidate)
        by_label = {d.label: d for d in comparison.deltas}
        assert by_label["fresh"].verdict == "new"
        assert not by_label["fresh"].fails
        assert comparison.ok

    def test_vanished_label_fails_the_gate(self):
        # Regression test: the legacy checker reported fresh-only labels
        # but a label *removed* from the candidate must fail explicitly,
        # not read as a pass.
        baseline = profile([metric("kept", (1.0,)), metric("gone", (1.0,))])
        candidate = profile([metric("kept", (1.0,))], commit=COMMIT_B)
        comparison = perf.compare_profiles(baseline, candidate)
        by_label = {d.label: d for d in comparison.deltas}
        assert by_label["gone"].verdict == "vanished"
        assert by_label["gone"].fails
        assert not comparison.ok
        assert "vanished" in perf.render_comparison(comparison)

    def test_vanished_can_be_ignored_explicitly(self):
        baseline = profile([metric("kept", (1.0,)), metric("gone", (1.0,))])
        candidate = profile([metric("kept", (1.0,))], commit=COMMIT_B)
        comparison = perf.compare_profiles(
            baseline, candidate, DetectorConfig(ignore_vanished=True)
        )
        assert comparison.ok

    def test_vanished_report_metric_never_fails(self):
        baseline = profile([
            metric("kept", (1.0,)),
            metric("context", (1.0,), gate="report"),
        ])
        candidate = profile([metric("kept", (1.0,))], commit=COMMIT_B)
        comparison = perf.compare_profiles(baseline, candidate)
        assert comparison.ok

    def test_absolute_metrics_gated_only_on_request(self):
        baseline = profile([metric("raw", (100.0,), gate="absolute")])
        candidate = profile(
            [metric("raw", (10.0,), gate="absolute")], commit=COMMIT_B
        )
        assert perf.compare_profiles(baseline, candidate).ok
        gated = perf.compare_profiles(
            baseline, candidate, DetectorConfig(gate_absolute=True)
        )
        assert not gated.ok

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            DetectorConfig(alpha=1.5)
        with pytest.raises(ConfigError):
            DetectorConfig(max_regression=0.0)
        with pytest.raises(ConfigError):
            DetectorConfig(method="bayes")


class TestCompoundGroups:
    """The campaign suite's serial-relative + raw throughput pairs."""

    def build(self, rel_cand, raw_cand):
        base = profile([
            metric("w rel", gauss(1, 2.0, 0.05, 8), gate="gated", group="w"),
            metric("w raw", gauss(2, 100.0, 2.0, 8), gate="absolute",
                   group="w"),
        ], suite="campaign")
        cand = profile([
            metric("w rel", rel_cand, gate="gated", group="w"),
            metric("w raw", raw_cand, gate="absolute", group="w"),
        ], suite="campaign", commit=COMMIT_B)
        return perf.compare_profiles(base, cand)

    def test_relative_drop_alone_does_not_fail(self):
        # Serial alone sped up: the relative ratio halves, the raw
        # number holds -> legacy compound semantics say pass.
        comparison = self.build(
            gauss(3, 1.0, 0.02, 8), gauss(4, 100.0, 2.0, 8)
        )
        by_label = {d.label: d for d in comparison.deltas}
        assert by_label["w rel"].verdict == "degraded"
        assert not by_label["w rel"].fails
        assert "compound" in by_label["w rel"].note
        assert comparison.ok

    def test_both_dropping_fails(self):
        comparison = self.build(
            gauss(5, 1.0, 0.02, 8), gauss(6, 50.0, 1.0, 8)
        )
        by_label = {d.label: d for d in comparison.deltas}
        assert by_label["w rel"].fails
        assert not comparison.ok

    def test_gate_absolute_bypasses_compound_softening(self):
        base = profile([
            metric("w rel", gauss(1, 2.0, 0.05, 8), gate="gated", group="w"),
            metric("w raw", gauss(2, 100.0, 2.0, 8), gate="absolute",
                   group="w"),
        ], suite="campaign")
        cand = profile([
            metric("w rel", gauss(3, 1.0, 0.02, 8), gate="gated", group="w"),
            metric("w raw", gauss(4, 100.0, 2.0, 8), gate="absolute",
                   group="w"),
        ], suite="campaign", commit=COMMIT_B)
        comparison = perf.compare_profiles(
            base, cand, DetectorConfig(gate_absolute=True)
        )
        assert not comparison.ok


class TestProfileModel:
    def test_document_round_trip(self):
        original = profile([
            metric("a", (1.0, 2.0), unit="ratio"),
            metric("b", (3.0,), gate="absolute", group="g",
                   direction="lower"),
        ])
        decoded = perf.Profile.from_document(
            json.loads(json.dumps(original.to_document()))
        )
        assert decoded == original

    def test_unknown_format_rejected(self):
        with pytest.raises(PerfError):
            perf.Profile.from_document({"format": "repro-perf-profile/99"})

    def test_unknown_document_rejected(self):
        with pytest.raises(PerfError):
            perf.profile_from_document({"benchmark": "mystery"})

    def test_bad_samples_name_the_metric(self):
        with pytest.raises(ConfigError, match="ipc"):
            metric("ipc", ())
        with pytest.raises(ConfigError, match="ipc"):
            metric("ipc", (1.0, "fast"))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            profile([metric("a", (1.0,)), metric("a", (2.0,))])

    def test_bad_direction_and_gate_rejected(self):
        with pytest.raises(ConfigError, match="direction"):
            metric("a", (1.0,), direction="sideways")
        with pytest.raises(ConfigError, match="gate"):
            metric("a", (1.0,), gate="sometimes")


class TestLegacyConversion:
    def core_doc(self, with_samples=True):
        event = {"instr_per_sec": 40000.0}
        scan = {"instr_per_sec": 20000.0}
        if with_samples:
            event["seconds"] = [0.2, 0.21, 0.19]
            scan["seconds"] = [0.4, 0.42, 0.38]
        return {
            "benchmark": "core-scheduler",
            "n_instructions": 8000,
            "points": [{
                "bench": "gcc", "scheme": "modulo", "machine": "clustered",
                "event": event, "scan": scan, "speedup_vs_scan": 2.0,
            }],
        }

    def test_core_conversion_pairs_raw_repeats(self):
        converted = perf.profile_from_document(self.core_doc())
        assert converted.suite == "core"
        by_label = converted.by_label()
        speedup = by_label["gcc/modulo/clustered speedup_vs_scan"]
        assert speedup.samples == (
            pytest.approx(2.0), pytest.approx(2.0), pytest.approx(2.0)
        )
        assert speedup.gate == "gated"
        ips = by_label["gcc/modulo/clustered event instr/s"]
        assert ips.gate == "absolute"
        assert ips.samples == (
            pytest.approx(40000.0), pytest.approx(8000 / 0.21),
            pytest.approx(8000 / 0.19),
        )

    def test_core_conversion_without_samples_falls_back(self):
        converted = perf.profile_from_document(self.core_doc(False))
        speedup = converted.by_label()[
            "gcc/modulo/clustered speedup_vs_scan"
        ]
        assert speedup.samples == (2.0,)

    def dispatch_doc(self):
        document = self.core_doc()
        document["points"].append({
            "bench": "gcc", "scheme": "modulo", "machine": "clustered",
            "kind": "dispatch",
            "columnar": {
                "instr_per_sec": 50000.0, "seconds": [0.16, 0.17, 0.15],
            },
            "object": {
                "instr_per_sec": 25000.0, "seconds": [0.32, 0.34, 0.30],
            },
            "speedup_vs_object": 2.0,
        })
        return document

    def test_core_conversion_handles_dispatch_points(self):
        converted = perf.profile_from_document(self.dispatch_doc())
        by_label = converted.by_label()
        # The scheduler point still converts alongside...
        assert "gcc/modulo/clustered speedup_vs_scan" in by_label
        # ...and the dispatch point gets its own label family.
        speedup = by_label["gcc/modulo/clustered dispatch speedup_vs_object"]
        assert speedup.gate == "gated"
        assert speedup.samples == (
            pytest.approx(0.32 / 0.16), pytest.approx(0.34 / 0.17),
            pytest.approx(0.30 / 0.15),
        )
        ips = by_label["gcc/modulo/clustered columnar instr/s"]
        assert ips.gate == "absolute"
        assert ips.samples == (
            pytest.approx(8000 / 0.16), pytest.approx(8000 / 0.17),
            pytest.approx(8000 / 0.15),
        )

    def test_legacy_ratio_gate_handles_dispatch_points(self):
        from repro.perf.legacy import core_metrics

        fresh = self.dispatch_doc()
        # Baseline predates the dispatch rework: scheduler point only.
        baseline = self.core_doc()
        rows = list(core_metrics(baseline, fresh, gate_absolute=False))
        labels = [row[0] for row in rows]
        assert "gcc/modulo/clustered speedup_vs_scan" in labels
        new = [row for row in rows if "[new in fresh run]" in row[0]]
        assert len(new) == 1
        assert "dispatch speedup_vs_object" in new[0][0]
        assert new[0][3] is False  # new labels are never gated
        # Once both documents carry the point, the ratio gates.
        rows = list(core_metrics(fresh, fresh, gate_absolute=False))
        gated = {
            row[0]: row[3] for row in rows
        }
        assert gated["gcc/modulo/clustered dispatch speedup_vs_object"]
        assert not gated["gcc/modulo/clustered columnar instr/s"]

    def test_campaign_conversion_builds_compound_groups(self):
        document = {
            "benchmark": "campaign-backends",
            "n_points": 4,
            "backends": {
                "serial": {
                    "points_per_second": 16.0, "seconds": [0.25, 0.26, 0.24],
                },
                "worker-warm": {
                    "points_per_second": 2000.0,
                    "seconds": [0.002, 0.0021, 0.0019],
                },
            },
        }
        converted = perf.profile_from_document(document)
        assert converted.suite == "campaign"
        by_label = converted.by_label()
        assert "serial points/s vs serial" not in by_label
        raw = by_label["worker-warm points/s"]
        assert raw.gate == "absolute" and raw.group == "worker-warm"
        rel = by_label["worker-warm points/s vs serial"]
        assert rel.gate == "gated" and rel.group == "worker-warm"
        assert rel.samples == (
            pytest.approx(0.25 / 0.002), pytest.approx(0.26 / 0.0021),
            pytest.approx(0.24 / 0.0019),
        )

    def test_checked_in_baselines_convert(self):
        core = perf.load_profile("BENCH_core.json")
        campaign = perf.load_profile("BENCH_campaign.json")
        assert core.suite == "core" and core.metrics
        assert campaign.suite == "campaign" and campaign.metrics


class TestProvenance:
    def test_collect_in_this_checkout(self):
        stamp = perf.collect(".")
        assert len(stamp.commit) == 40
        assert isinstance(stamp.dirty, bool)
        assert stamp.recorded_at[4] == "-"
        assert stamp.python

    def test_validation_names_the_offending_field(self):
        good = perf.Provenance(
            commit=COMMIT_A, recorded_at="2026-08-01T00:00:00Z"
        ).to_document()
        perf.Provenance.from_document(good)  # sanity: valid stamp decodes
        for field, value in (
            ("commit", "not hex!"),
            ("commit", ""),
            ("dirty", "yes"),
            ("branch", 7),
            ("recorded_at", "today"),
        ):
            broken = dict(good, **{field: value})
            with pytest.raises(ConfigError, match=f"provenance.{field}"):
                perf.Provenance.from_document(broken)

    def test_dirty_trees_get_their_own_ledger_key(self):
        clean = perf.Provenance(commit=COMMIT_A)
        dirty = perf.Provenance(commit=COMMIT_A, dirty=True)
        assert clean.key != dirty.key


class TestLedger:
    def seed(self, tmp_path):
        ledger = perf.Ledger(str(tmp_path / "BENCH_history"))
        first = profile([metric("m", (1.0,))], commit=COMMIT_A,
                        when="2026-08-01")
        second = profile([metric("m", (1.1,))], commit=COMMIT_B,
                         when="2026-08-02")
        ledger.append(first)
        ledger.append(second)
        return ledger, first, second

    def test_append_lookup_log(self, tmp_path):
        ledger, first, second = self.seed(tmp_path)
        assert ledger.suites() == ["core"]
        assert [p.provenance.commit for p in ledger.log("core")] == [
            COMMIT_B, COMMIT_A
        ]
        assert ledger.lookup("core").provenance.commit == COMMIT_B
        assert ledger.lookup("core", "aaaa").provenance.commit == COMMIT_A

    def test_append_refuses_silent_overwrite(self, tmp_path):
        ledger, first, _ = self.seed(tmp_path)
        with pytest.raises(PerfError, match="overwrite"):
            ledger.append(first)
        replaced = profile([metric("m", (9.0,))], commit=COMMIT_A,
                           when="2026-08-01")
        ledger.append(replaced, overwrite=True)
        assert ledger.lookup("core", "aaaa").metrics[0].samples == (9.0,)

    def test_lookup_errors(self, tmp_path):
        ledger, _, _ = self.seed(tmp_path)
        with pytest.raises(PerfError, match="no 'core' profile"):
            ledger.lookup("core", "dddd")
        with pytest.raises(PerfError, match="no 'campaign' profiles"):
            ledger.lookup("campaign")
        third = profile([metric("m", (1.0,))], commit="ab" + "c" * 38,
                        when="2026-08-03")
        ledger.append(third)
        with pytest.raises(PerfError, match="ambiguous"):
            ledger.lookup("core", "a")

    def test_baseline_for_skips_the_candidate_commit(self, tmp_path):
        ledger, first, second = self.seed(tmp_path)
        baseline = ledger.baseline_for("core", second)
        assert baseline.provenance.commit == COMMIT_A
        only = perf.Ledger(str(tmp_path / "solo"))
        only.append(second)
        assert only.baseline_for("core", second) is None

    def test_prune_keeps_the_newest(self, tmp_path):
        ledger, _, _ = self.seed(tmp_path)
        third = profile([metric("m", (1.2,))], commit=COMMIT_C,
                        when="2026-08-03")
        ledger.append(third)
        removed = ledger.prune("core", keep=2)
        assert len(removed) == 1
        assert [p.provenance.commit for p in ledger.log("core")] == [
            COMMIT_C, COMMIT_B
        ]
        with pytest.raises(PerfError):
            ledger.prune("core", keep=0)

    def test_entries_are_valid_documents_on_disk(self, tmp_path):
        ledger, first, _ = self.seed(tmp_path)
        with open(ledger.path_for(first), "r", encoding="utf-8") as fh:
            document = json.load(fh)
        assert document["format"] == perf.PROFILE_FORMAT


class TestPerfCli:
    """The repro-sim perf record|check|diff|log|prune surface."""

    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def ledger_args(self, tmp_path):
        return ("--ledger", str(tmp_path / "BENCH_history"))

    def seed_pair(self, tmp_path, cand_factor=1.0, drop_label=False):
        """A two-commit ledger: baseline, then a scaled candidate."""
        base = profile(
            [metric("ipc", gauss(1, 1.0, 0.02, 8)),
             metric("extra", gauss(2, 1.0, 0.02, 8))],
            commit=COMMIT_A, when="2026-08-01",
        )
        metrics = [metric(
            "ipc", tuple(cand_factor * s for s in gauss(3, 1.0, 0.02, 8))
        )]
        if not drop_label:
            metrics.append(metric("extra", gauss(4, 1.0, 0.02, 8)))
        cand = profile(metrics, commit=COMMIT_B, when="2026-08-02")
        ledger = perf.Ledger(str(tmp_path / "BENCH_history"))
        ledger.append(base)
        ledger.append(cand)
        return ledger

    def test_record_from_json_and_log(self, tmp_path, capsys):
        document = {
            "benchmark": "campaign-backends",
            "n_points": 2,
            "backends": {"serial": {"points_per_second": 10.0}},
        }
        source = self.write(tmp_path, "BENCH_campaign.json", document)
        out_profile = str(tmp_path / "campaign.profile.json")
        assert self.run_cli(
            "perf", "record", "--from-json", source, "-o", out_profile,
            *self.ledger_args(tmp_path),
        ) == 0
        out = capsys.readouterr().out
        assert "recorded campaign" in out
        recorded = perf.load_profile(out_profile)
        assert recorded.suite == "campaign"
        assert recorded.provenance.recorded_at  # stamped on record
        assert self.run_cli(
            "perf", "log", *self.ledger_args(tmp_path)
        ) == 0
        assert "campaign: 1 recorded profile(s)" in capsys.readouterr().out

    def test_record_refuses_duplicate_without_overwrite(self, tmp_path):
        document = {
            "benchmark": "campaign-backends",
            "n_points": 2,
            "backends": {"serial": {"points_per_second": 10.0}},
        }
        source = self.write(tmp_path, "BENCH_campaign.json", document)
        args = ("perf", "record", "--from-json", source,
                *self.ledger_args(tmp_path))
        assert self.run_cli(*args) == 0
        assert self.run_cli(*args) == 1  # same commit, no --overwrite
        assert self.run_cli(*args, "--overwrite") == 0

    def test_check_passes_on_stable_history(self, tmp_path, capsys):
        self.seed_pair(tmp_path, cand_factor=1.0)
        assert self.run_cli(
            "perf", "check", *self.ledger_args(tmp_path)
        ) == 0
        assert "perf check ok" in capsys.readouterr().out

    def test_check_flags_2x_slowdown(self, tmp_path, capsys):
        self.seed_pair(tmp_path, cand_factor=0.5)
        report = str(tmp_path / "report.txt")
        assert self.run_cli(
            "perf", "check", "-o", report, *self.ledger_args(tmp_path)
        ) == 1
        out = capsys.readouterr().out
        assert "DEGRADED" in out and "perf check FAILED" in out
        assert "DEGRADED" in open(report).read()

    def test_check_improvement_passes(self, tmp_path, capsys):
        self.seed_pair(tmp_path, cand_factor=2.0)
        assert self.run_cli(
            "perf", "check", *self.ledger_args(tmp_path)
        ) == 0
        assert "improved" in capsys.readouterr().out

    def test_check_reports_vanished_labels(self, tmp_path, capsys):
        # Regression test: a label dropped from the candidate must fail
        # loudly, not silently disappear from the report.
        self.seed_pair(tmp_path, drop_label=True)
        assert self.run_cli(
            "perf", "check", *self.ledger_args(tmp_path)
        ) == 1
        out = capsys.readouterr().out
        assert "VANISHED" in out
        assert self.run_cli(
            "perf", "check", "--ignore-vanished",
            *self.ledger_args(tmp_path),
        ) == 0

    def test_check_with_explicit_candidate_file(self, tmp_path, capsys):
        self.seed_pair(tmp_path)
        cand = profile(
            [metric("ipc", gauss(5, 0.5, 0.01, 8)),
             metric("extra", gauss(6, 1.0, 0.02, 8))],
            commit=COMMIT_C, when="2026-08-03",
        )
        path = self.write(tmp_path, "cand.json", cand.to_document())
        assert self.run_cli(
            "perf", "check", "--candidate", path,
            *self.ledger_args(tmp_path),
        ) == 1

    def test_check_single_entry_has_nothing_to_compare(
        self, tmp_path, capsys
    ):
        ledger = perf.Ledger(str(tmp_path / "BENCH_history"))
        ledger.append(profile([metric("ipc", (1.0,))]))
        assert self.run_cli(
            "perf", "check", *self.ledger_args(tmp_path)
        ) == 0
        assert "nothing older" in capsys.readouterr().out

    def test_diff_latest_pair_and_refs(self, tmp_path, capsys):
        self.seed_pair(tmp_path, cand_factor=0.5)
        assert self.run_cli(
            "perf", "diff", *self.ledger_args(tmp_path)
        ) == 0
        out = capsys.readouterr().out
        assert "aaaaaaaaaaaa" in out and "bbbbbbbbbbbb" in out
        assert "degraded" in out.lower()
        assert self.run_cli(
            "perf", "diff", "bbbb", "aaaa", "--suite", "core",
            *self.ledger_args(tmp_path),
        ) == 0
        assert "improved" in capsys.readouterr().out

    def test_diff_across_suites_rejected(self, tmp_path, capsys):
        core = profile([metric("m", (1.0,))])
        campaign = profile([metric("m", (1.0,))], suite="campaign",
                           commit=COMMIT_B)
        a = self.write(tmp_path, "a.json", core.to_document())
        b = self.write(tmp_path, "b.json", campaign.to_document())
        assert self.run_cli(
            "perf", "diff", a, b, *self.ledger_args(tmp_path)
        ) == 1
        assert "across suites" in capsys.readouterr().out

    def test_prune(self, tmp_path, capsys):
        self.seed_pair(tmp_path)
        assert self.run_cli(
            "perf", "prune", "--keep", "1", *self.ledger_args(tmp_path)
        ) == 0
        ledger = perf.Ledger(str(tmp_path / "BENCH_history"))
        assert len(ledger.entries("core")) == 1


class TestCheckedInLedger:
    """The seeded BENCH_history/ entries must stay readable and gated."""

    def test_seeded_entries_load(self):
        ledger = perf.Ledger("BENCH_history")
        suites = ledger.suites()
        assert "core" in suites and "campaign" in suites
        for suite in suites:
            latest = ledger.lookup(suite)
            assert latest.metrics
            assert latest.provenance.commit != "unknown"

    def test_fresh_measurement_would_gate_against_seed(self):
        # The CI flow in miniature: the checked-in legacy documents
        # (converted, as CI converts a fresh run) compare cleanly
        # against the seeded ledger entries recorded from them.
        ledger = perf.Ledger("BENCH_history")
        for name, suite in (
            ("BENCH_core.json", "core"),
            ("BENCH_campaign.json", "campaign"),
        ):
            candidate = perf.load_profile(name).with_provenance(
                perf.Provenance(
                    commit=COMMIT_C, recorded_at="2026-08-07T00:00:00Z"
                )
            )
            baseline = ledger.baseline_for(suite, candidate)
            assert baseline is not None
            comparison = perf.compare_profiles(baseline, candidate)
            assert comparison.ok, perf.render_comparison(comparison)


class TestSparkline:
    def seed(self, tmp_path):
        """Three commits with a rising metric; one entry misses a label."""
        ledger = perf.Ledger(str(tmp_path / "BENCH_history"))
        ledger.append(profile(
            [metric("ipc", (1.0,)), metric("instr/s", (1000.0,), unit="instr/s")],
            commit=COMMIT_A, when="2026-08-01",
        ))
        ledger.append(profile(
            [metric("ipc", (1.5,))],
            commit=COMMIT_B, when="2026-08-02",
        ))
        ledger.append(profile(
            [metric("ipc", (2.0,)), metric("instr/s", (2400.0,), unit="instr/s")],
            commit=COMMIT_C, when="2026-08-03",
        ))
        return ledger

    def test_sparkline_shape(self):
        assert perf.sparkline([1.0, 2.0, 3.0]) == "▁▄█"
        assert perf.sparkline([2.0, None, 2.0]) == "▅·▅"
        assert perf.sparkline([None, None]) == "··"

    def test_label_history_renders_trajectory(self, tmp_path):
        ledger = self.seed(tmp_path)
        text = perf.render_label_history(ledger, "core", "ipc")
        assert "▁▄█" in text
        assert "1 -> 2" in text
        assert "+100.0%" in text

    def test_label_history_gap_for_missing_entries(self, tmp_path):
        ledger = self.seed(tmp_path)
        text = perf.render_label_history(ledger, "core", "instr/s")
        assert "▁·█" in text
        assert "instr/s" in text
        assert "+140.0%" in text

    def test_substring_match_covers_label_family(self, tmp_path):
        ledger = self.seed(tmp_path)
        text = perf.render_label_history(ledger, "core", "I")
        # Case-insensitive substring: both 'ipc' and 'instr/s' match.
        assert "ipc" in text and "instr/s" in text

    def test_unknown_label_names_the_recorded_ones(self, tmp_path):
        ledger = self.seed(tmp_path)
        with pytest.raises(PerfError, match="ipc"):
            perf.render_label_history(ledger, "core", "nonexistent")

    def test_limit_trims_oldest_entries(self, tmp_path):
        ledger = self.seed(tmp_path)
        text = perf.render_label_history(ledger, "core", "ipc", limit=2)
        assert "2 profile(s)" in text
        assert "1.5 -> 2" in text
