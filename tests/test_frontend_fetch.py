"""Unit tests for the trace-driven fetch unit."""

from repro.frontend import CombinedPredictor, FetchUnit
from repro.memory import MemoryHierarchy
from repro.workloads import workload


def make_fetch(bench="gcc", **kwargs):
    wl = workload(bench)
    hierarchy = MemoryHierarchy()
    predictor = CombinedPredictor()
    return FetchUnit(wl.trace(), hierarchy, predictor, **kwargs)


def drain(fetch, cycles, budget=8):
    groups = []
    for cycle in range(cycles):
        groups.append(fetch.fetch(cycle, budget))
    return groups


class TestBasicFetch:
    def test_fetch_width_respected(self):
        fetch = make_fetch(fetch_width=8)
        for cycle, group in enumerate(drain(make_fetch(), 50)):
            assert len(group) <= 8

    def test_budget_respected(self):
        fetch = make_fetch()
        # warm the I-cache first so the budget is the only limit
        drain(fetch, 200)
        group = fetch.fetch(1000, 3)
        assert len(group) <= 3

    def test_sequence_numbers_monotonic(self):
        fetch = make_fetch()
        seqs = [d.seq for g in drain(fetch, 100) for d in g]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_fetch_cycle_recorded(self):
        fetch = make_fetch()
        for cycle in range(50):
            for dyn in fetch.fetch(cycle, 8):
                assert dyn.fetch_cycle == cycle

    def test_program_order_matches_trace(self):
        wl = workload("li")
        fetch = FetchUnit(wl.trace(), MemoryHierarchy(), CombinedPredictor())
        fetched = [d.inst.pc for g in drain(fetch, 400) for d in g]
        expected = [r.inst.pc for r in wl.trace().take(len(fetched))]
        assert fetched == expected


class TestGroupTermination:
    def test_taken_branch_ends_group(self):
        fetch = make_fetch()
        for cycle in range(300):
            group = fetch.fetch(cycle, 8)
            for i, dyn in enumerate(group):
                if dyn.inst.is_control and dyn.taken:
                    assert i == len(group) - 1

    def test_mispredict_stalls_fetch(self):
        fetch = make_fetch("go")  # hardest branches
        mispredicted = None
        cycle = 0
        while mispredicted is None and cycle < 2000:
            for dyn in fetch.fetch(cycle, 8):
                if dyn.mispredicted:
                    mispredicted = dyn
            cycle += 1
        assert mispredicted is not None, "go must mispredict eventually"
        # While unresolved, fetch delivers nothing.
        assert fetch.stalled
        assert fetch.fetch(cycle, 8) == []
        # Resolve the branch; fetch resumes after the redirect penalty.
        mispredicted.complete_cycle = cycle + 1
        assert fetch.fetch(cycle + 1, 8) == []
        resumed = fetch.fetch(
            cycle + 2 + fetch.redirect_penalty, 8
        )
        assert resumed
        assert not fetch.stalled

    def test_icache_cold_start_stalls(self):
        fetch = make_fetch()
        assert fetch.fetch(0, 8) == []  # first line is a cold miss
        assert fetch.icache_stall_cycles >= 0
        # After the miss latency, instructions flow.
        produced = []
        for cycle in range(1, 40):
            produced.extend(fetch.fetch(cycle, 8))
        assert produced


class TestCounters:
    def test_fetched_counter(self):
        fetch = make_fetch()
        total = sum(len(g) for g in drain(fetch, 100))
        assert fetch.fetched == total

    def test_next_seq_shared_with_copies(self):
        fetch = make_fetch()
        drain(fetch, 10)
        before = fetch.next_seq()
        after = fetch.next_seq()
        assert after == before + 1
