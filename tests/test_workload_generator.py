"""Unit tests for the synthetic program generator."""

from collections import Counter

import pytest

from repro.isa import InstrClass
from repro.workloads import (
    SPECINT95,
    generate_program,
    get_profile,
    workload,
)
from repro.workloads.generator import (
    ADDR_REGS,
    COND_REGS,
    DATA_REGS,
    INDEX_REGS,
)


def test_register_partitions_are_disjoint():
    pools = [set(ADDR_REGS), set(INDEX_REGS), set(COND_REGS), set(DATA_REGS)]
    union = set().union(*pools)
    assert len(union) == sum(len(p) for p in pools)
    assert 0 not in union  # r0 reserved


def test_generation_is_deterministic():
    a = generate_program(get_profile("gcc"), seed=3)
    b = generate_program(get_profile("gcc"), seed=3)
    assert [i.pc for i in a.all_instructions()] == [
        i.pc for i in b.all_instructions()
    ]
    assert [i.opcode for i in a.all_instructions()] == [
        i.opcode for i in b.all_instructions()
    ]


def test_different_seeds_differ():
    a = generate_program(get_profile("gcc"), seed=0)
    b = generate_program(get_profile("gcc"), seed=1)
    ops_a = [i.opcode for i in a.all_instructions()]
    ops_b = [i.opcode for i in b.all_instructions()]
    assert ops_a != ops_b


def test_different_benchmarks_differ():
    a = generate_program(get_profile("gcc"))
    b = generate_program(get_profile("li"))
    assert [i.opcode for i in a.all_instructions()] != [
        i.opcode for i in b.all_instructions()
    ]


@pytest.mark.parametrize("bench", sorted(SPECINT95))
def test_program_is_structurally_valid(bench):
    """StaticProgram's own validation passes for every benchmark."""
    program = generate_program(get_profile(bench))
    assert program.num_instructions > 50
    # Every conditional has a behaviour, every memory op has one (checked
    # by the constructor); also check closedness of the CFG.
    for block in program.blocks:
        if block.terminator is None:
            assert block.fall_succ is not None


@pytest.mark.parametrize("bench", ["gcc", "li", "ijpeg"])
def test_branch_targets_match_successors(bench):
    """Terminator targets must point at the taken successor's first pc."""
    program = generate_program(get_profile(bench))
    for block in program.blocks:
        term = block.terminator
        if term is not None and block.taken_succ is not None:
            target_block = program.blocks[block.taken_succ]
            assert term.target == target_block.start_pc


def test_instruction_mix_tracks_profile():
    """Dynamic mix should be within sane bounds of the profile's intent."""
    wl = workload("gcc")
    records = wl.trace().take(30000)
    counts = Counter(r.inst.cls for r in records)
    total = len(records)
    mem_frac = (counts[InstrClass.LOAD] + counts[InstrClass.STORE]) / total
    branch_frac = counts[InstrClass.BRANCH] / total
    assert 0.15 < mem_frac < 0.45
    assert 0.03 < branch_frac < 0.2
    assert counts[InstrClass.FP] == 0  # SpecInt has no FP


def test_cold_blocks_rarely_execute():
    """Cold-path pollution blocks must be dynamically rare."""
    wl = workload("gcc")
    program = wl.program
    records = wl.trace().take(40000)
    executed = Counter(program.block_of(r.inst.pc).block_id for r in records)
    # Identify cold blocks structurally: blocks whose *only* predecessors
    # are fall-through edges of branches biased 0.97 taken.
    cold_candidates = set()
    for block in program.blocks:
        term = block.terminator
        if term is None or not term.is_conditional:
            continue
        behavior = program.branch_behaviors[term.pc]
        if behavior.kind == "biased" and behavior.taken_prob >= 0.95:
            cold_candidates.add(block.fall_succ)
    assert cold_candidates, "generator should produce cold paths"
    total = sum(executed.values())
    cold_fraction = (
        sum(executed.get(b, 0) for b in cold_candidates) / total
    )
    assert cold_fraction < 0.08


def test_pcs_are_dense_and_aligned():
    program = generate_program(get_profile("m88ksim"))
    pcs = [i.pc for i in program.all_instructions()]
    assert all(pc % 4 == 0 for pc in pcs)
    assert pcs == sorted(pcs)
    assert pcs[-1] - pcs[0] == (len(pcs) - 1) * 4  # contiguous layout
