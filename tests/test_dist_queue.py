"""Tests for the directory-queue backend: package, claim, merge."""

import json
import os
import threading

import pytest

from repro import dist
from repro.analysis.campaign import (
    Campaign,
    CampaignPoint,
    CampaignResults,
    expand_grid,
    run_campaign,
)
from repro.errors import DistError
from repro.workloads import (
    clear_workload_cache,
    reset_trace_stats,
    trace_build_counts,
)

N = 400
W = 120


@pytest.fixture(scope="module")
def points():
    return expand_grid(
        ["gcc", "li"], ["modulo", "general-balance"],
        n_instructions=N, warmup=W,
    )


@pytest.fixture(scope="module")
def serial(points):
    return Campaign(points, backend="serial").run()


def _job(points, tmp_path, name="job"):
    job_dir = str(tmp_path / name)
    dist.package_job(points, job_dir)
    return job_dir


class TestPackaging:
    def test_layout(self, points, tmp_path):
        job_dir = str(tmp_path / "job")
        job = dist.package_job(points, job_dir, description="test grid")
        assert job.n_points == len(points) and job.n_traces == 2
        manifest = json.load(
            open(os.path.join(job_dir, "manifest.json"))
        )
        assert manifest["format"] == "repro-dist-job"
        assert len(manifest["points"]) == len(points)
        assert sorted(manifest["traces"]) == [
            "gcc-s0.rtrace", "li-s0.rtrace",
        ]
        assert len(os.listdir(os.path.join(job_dir, "queue"))) == len(points)
        for fname in manifest["traces"]:
            assert os.path.isfile(os.path.join(job_dir, "traces", fname))

    def test_manifest_round_trips_the_points(self, points, tmp_path):
        job_dir = _job(points, tmp_path)
        assert dist.load_manifest_points(job_dir) == list(points)

    def test_repackaging_is_rejected(self, points, tmp_path):
        job_dir = _job(points, tmp_path)
        with pytest.raises(DistError, match="already"):
            dist.package_job(points, job_dir)

    def test_empty_grid_is_rejected(self, tmp_path):
        with pytest.raises(DistError, match="empty"):
            dist.package_job([], str(tmp_path / "job"))

    def test_not_a_job_dir(self, tmp_path):
        with pytest.raises(DistError, match="manifest"):
            dist.load_manifest_points(str(tmp_path))


class TestClaiming:
    def test_each_point_claimed_exactly_once(self, points, tmp_path):
        job_dir = _job(points, tmp_path)
        seen = []
        while True:
            entry = dist.claim_point(job_dir, "only-worker")
            if entry is None:
                break
            seen.append(entry["index"])
        assert sorted(seen) == list(range(len(points)))
        assert dist.claim_point(job_dir, "late-worker") is None

    def test_concurrent_claims_never_hand_out_duplicates(
        self, points, tmp_path
    ):
        """The claim race: many threads hammer one queue; every point
        is claimed exactly once across all of them."""
        job_dir = _job(points, tmp_path)
        claims = {f"w{i}": [] for i in range(4)}

        def grab(worker_id):
            while True:
                entry = dist.claim_point(job_dir, worker_id)
                if entry is None:
                    return
                claims[worker_id].append(entry["index"])

        threads = [
            threading.Thread(target=grab, args=(wid,)) for wid in claims
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        everything = sorted(
            index for got in claims.values() for index in got
        )
        assert everything == list(range(len(points)))


class TestWorkersAndMerge:
    def test_two_workers_merge_identical_to_serial(
        self, points, serial, tmp_path
    ):
        """Acceptance: package -> two workers -> merge produces a store
        point-for-point identical to the serial backend."""
        job_dir = _job(points, tmp_path)
        threads = [
            threading.Thread(
                target=dist.run_worker,
                args=(job_dir,),
                kwargs={"worker_id": f"w{i}"},
            )
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store = str(tmp_path / "merged.json")
        merged = dist.merge_job(job_dir, store=store)
        assert merged.complete
        assert [(r.point, r.result) for r in merged.results()] == [
            (r.point, r.result) for r in serial
        ]
        assert [(r.point, r.result) for r in CampaignResults.load(store)] \
            == [(r.point, r.result) for r in serial]

    def test_worker_replays_packaged_traces_without_regeneration(
        self, points, tmp_path
    ):
        """The shipping-unit property: a worker process regenerates no
        workload trace — everything replays from the packaged .rtrace."""
        job_dir = _job(points, tmp_path)
        clear_workload_cache()
        reset_trace_stats()
        done = dist.run_worker(job_dir, worker_id="solo")
        assert done == len(points)
        assert trace_build_counts() == {}

    def test_restarted_worker_keeps_its_earlier_points(
        self, points, serial, tmp_path
    ):
        """A worker restarted with the same id (the crash-recovery flow)
        must append to its partial store, not clobber it — the earlier
        points' queue tokens are gone, so clobbering loses them."""
        job_dir = _job(points, tmp_path)
        first = dist.run_worker(job_dir, worker_id="hostA", max_points=2)
        assert first == 2
        second = dist.run_worker(job_dir, worker_id="hostA")
        assert second == len(points) - 2
        merged = dist.merge_job(job_dir)
        assert merged.complete
        assert [(r.point, r.result) for r in merged.results()] == [
            (r.point, r.result) for r in serial
        ]

    def test_merge_of_incomplete_job_raises(self, points, tmp_path):
        job_dir = _job(points, tmp_path)
        dist.run_worker(job_dir, worker_id="partial", max_points=2)
        with pytest.raises(DistError, match="incomplete"):
            dist.merge_job(job_dir)
        merged = dist.merge_job(job_dir, allow_partial=True)
        assert len(merged.runs) == 2 and len(merged.missing) == 2

    def test_status_counts(self, points, tmp_path):
        job_dir = _job(points, tmp_path)
        before = dist.job_status(job_dir)
        assert (before.total, before.pending, before.completed) == (4, 4, 0)
        dist.run_worker(job_dir, worker_id="s", max_points=3)
        status = dist.job_status(job_dir)
        assert status.completed == 3 and status.pending == 1
        assert status.in_flight == 0 and status.failed == 0
        assert "3/4 completed" in status.describe()

    def test_failed_point_is_recorded_and_does_not_stop_the_queue(
        self, tmp_path
    ):
        pts = [
            CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W),
            CampaignPoint(
                "gcc", "no-such-scheme", n_instructions=N, warmup=W
            ),
            CampaignPoint(
                "gcc", "general-balance", n_instructions=N, warmup=W
            ),
        ]
        job_dir = _job(pts, tmp_path)
        done = dist.run_worker(job_dir, worker_id="w")
        assert done == 2  # the healthy siblings both completed
        with pytest.raises(DistError, match="1 failed"):
            dist.merge_job(job_dir)
        merged = dist.merge_job(job_dir, allow_partial=True)
        assert list(merged.failures) == [1]
        assert "no-such-scheme" in merged.failures[1]
        assert dist.job_status(job_dir).failed == 1

    def test_requeue_lost_recovers_an_abandoned_claim(
        self, points, serial, tmp_path
    ):
        """A worker that claims a point and dies leaves it in claimed/;
        requeue_lost puts it back and a healthy worker finishes the job
        with results still identical to serial."""
        job_dir = _job(points, tmp_path)
        entry = dist.claim_point(job_dir, "doomed")
        assert entry is not None  # ...and the worker "dies" here
        assert dist.job_status(job_dir).in_flight == 1
        assert dist.requeue_lost(job_dir) == 1
        assert dist.job_status(job_dir).in_flight == 0
        dist.run_worker(job_dir, worker_id="healthy")
        merged = dist.merge_job(job_dir)
        assert [(r.point, r.result) for r in merged.results()] == [
            (r.point, r.result) for r in serial
        ]

    def test_duplicate_results_deduplicate_deterministically(
        self, points, serial, tmp_path
    ):
        """Two workers simulating the same point (a requeue race) still
        merge to exactly one result per manifest point."""
        job_dir = _job(points, tmp_path)
        dist.run_worker(job_dir, worker_id="w1")
        # Rebuild the queue and run everything again as another worker:
        # every point now has two partial-store entries.
        for index in range(len(points)):
            token = os.path.join(
                job_dir, "queue", f"point-{index:05d}.json"
            )
            with open(token, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "index": index,
                        "spec": points[index].spec().to_dict(),
                        "trace": dist.trace_filename(
                            *points[index].trace_key
                        ),
                    },
                    fh,
                )
        dist.run_worker(job_dir, worker_id="w2")
        merged = dist.merge_job(job_dir)
        assert merged.workers == ("w1", "w2")
        assert [(r.point, r.result) for r in merged.results()] == [
            (r.point, r.result) for r in serial
        ]

    def test_merge_preserves_existing_store_points(
        self, points, serial, tmp_path
    ):
        """resume=True semantics: extra points already in the output
        store survive a merge over a different grid."""
        store = str(tmp_path / "store.json")
        extra = expand_grid(["go"], ["modulo"], n_instructions=N, warmup=W)
        run_campaign(extra, store=store)
        job_dir = _job(points, tmp_path)
        dist.run_worker(job_dir, worker_id="w")
        dist.merge_job(job_dir, store=store)
        stored = CampaignResults.load(store)
        assert len(stored) == len(points) + 1
        assert {r.point.bench for r in stored} == {"gcc", "li", "go"}
        # And a resumed campaign over the merged grid reuses everything.
        rerun = run_campaign(points, store=store, resume=True)
        assert rerun.n_simulated == 0 and rerun.n_cached == len(points)


class TestCliPipeline:
    def test_merge_writes_both_stores_and_modes_are_exclusive(
        self, points, tmp_path, capsys
    ):
        from repro.cli import main

        job_dir = _job(points, tmp_path)
        dist.run_worker(job_dir, worker_id="w")
        json_store = str(tmp_path / "m.json")
        csv_store = str(tmp_path / "m.csv")
        assert main(
            ["dist", "merge", job_dir,
             "--json", json_store, "--csv", csv_store]
        ) == 0
        out = capsys.readouterr().out
        assert json_store in out and csv_store in out
        assert len(CampaignResults.load(json_store)) == len(points)
        assert len(CampaignResults.load(csv_store)) == len(points)
        # worker invocation must pick exactly one mode.
        assert main(["dist", "worker"]) == 2
        assert main(["dist", "worker", job_dir, "--stdio"]) == 2

    def test_requeue_racing_a_live_worker_does_not_crash_it(self):
        # The live worker's claim token can vanish under --requeue-lost;
        # dropping the claim must swallow that, not kill the worker.
        from repro.dist.dirqueue import _drop_claim

        _drop_claim("/nonexistent/claim/token.json")


class TestDirqueueBackend:
    def test_backend_identical_to_serial(self, points, serial):
        """Acceptance: the dirqueue backend (subprocess workers over a
        temporary job directory) matches the serial backend."""
        run = run_campaign(points, workers=2, backend="dirqueue")
        assert [(r.point, r.result) for r in run.results] == [
            (r.point, r.result) for r in serial
        ]

    def test_backend_keeps_supplied_job_dir(self, points, tmp_path):
        job_dir = str(tmp_path / "kept")
        backend = dist.DirectoryQueueBackend(job_dir=job_dir)
        results = Campaign(points, workers=2, backend=backend).run()
        assert len(results) == len(points)
        assert os.path.isfile(os.path.join(job_dir, "manifest.json"))
        assert dist.job_status(job_dir).completed == len(points)
