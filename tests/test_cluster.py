"""Unit tests for cluster resources: FUs, windows, FIFOs, bypasses."""

import pytest

from repro.cluster import BypassNetwork, FifoIssueQueue, FUPool, IssueQueue
from repro.errors import SimulationError
from repro.isa import DynInst, Instruction, Opcode, fp_reg, make_copy_inst


def dyn(op=Opcode.ADD, seq=0, dst=5, srcs=(1,), target=None, pc=0x1000):
    return DynInst(seq, Instruction(pc, op, dst, srcs, target=target))


def int_cluster_fus():
    return FUPool(n_simple=3, has_complex_int=True, name="c0")


def fp_cluster_fus():
    return FUPool(
        n_simple=3, has_complex_int=False, n_fp_alu=3, has_fp_complex=True,
        name="c1",
    )


class TestFUPool:
    def test_simple_alu_budget(self):
        fus = int_cluster_fus()
        for i in range(3):
            d = dyn(seq=i)
            assert fus.can_issue(d, 0)
            fus.issue(d, 0)
        assert not fus.can_issue(dyn(seq=9), 0)

    def test_budget_renews_each_cycle(self):
        fus = int_cluster_fus()
        for i in range(3):
            fus.issue(dyn(seq=i), 0)
        assert fus.can_issue(dyn(seq=9), 1)

    def test_branches_and_memory_use_simple_alus(self):
        fus = int_cluster_fus()
        branch = dyn(Opcode.BEQ, dst=None, srcs=(1,), target=0x1000)
        load = dyn(Opcode.LOAD, dst=5, srcs=(1,))
        store = dyn(Opcode.STORE, dst=None, srcs=(1, 2))
        fus.issue(branch, 0)
        fus.issue(load, 0)
        fus.issue(store, 0)
        assert not fus.can_issue(dyn(seq=9), 0)

    def test_divider_unpipelined(self):
        fus = int_cluster_fus()
        div = dyn(Opcode.DIV, srcs=(1, 2))
        assert fus.can_issue(div, 0)
        fus.issue(div, 0)
        # busy for the full latency
        assert not fus.can_issue(dyn(Opcode.DIV, srcs=(1, 2)), 5)
        assert fus.can_issue(dyn(Opcode.DIV, srcs=(1, 2)), div.inst.latency)

    def test_multiplier_pipelined(self):
        fus = int_cluster_fus()
        fus.issue(dyn(Opcode.MUL, srcs=(1, 2)), 0)
        assert fus.can_issue(dyn(Opcode.MUL, srcs=(1, 2)), 1)

    def test_one_complex_unit_per_cycle(self):
        fus = int_cluster_fus()
        fus.issue(dyn(Opcode.MUL, srcs=(1, 2)), 0)
        assert not fus.can_issue(dyn(Opcode.MUL, srcs=(1, 2)), 0)

    def test_no_complex_in_fp_cluster(self):
        fus = fp_cluster_fus()
        assert not fus.supports(dyn(Opcode.MUL, srcs=(1, 2)))

    def test_no_fp_in_int_cluster(self):
        fus = int_cluster_fus()
        fadd = dyn(Opcode.FADD, dst=fp_reg(0), srcs=(fp_reg(1), fp_reg(2)))
        assert not fus.supports(fadd)

    def test_fp_alu_budget(self):
        fus = fp_cluster_fus()
        for i in range(3):
            fadd = dyn(
                Opcode.FADD, seq=i, dst=fp_reg(0), srcs=(fp_reg(1),)
            )
            assert fus.can_issue(fadd, 0)
            fus.issue(fadd, 0)
        assert not fus.can_issue(
            dyn(Opcode.FADD, seq=9, dst=fp_reg(0), srcs=(fp_reg(1),)), 0
        )

    def test_copies_need_no_fu(self):
        fus = int_cluster_fus()
        for i in range(3):
            fus.issue(dyn(seq=i), 0)
        copy = make_copy_inst(99, 5, 100)
        assert fus.can_issue(copy, 0)

    def test_baseline_fp_cluster_has_no_simple_units(self):
        fus = FUPool(n_simple=0, has_complex_int=False, n_fp_alu=3)
        assert not fus.supports(dyn())


class TestIssueQueue:
    def test_capacity_enforced(self):
        iq = IssueQueue(2)
        assert iq.insert(dyn(seq=0))
        assert iq.insert(dyn(seq=1))
        assert not iq.can_accept()
        # insert is the single guarded path: a full queue refuses rather
        # than raising, and the refused instruction is not enqueued.
        assert not iq.insert(dyn(seq=2))
        assert len(iq) == 2
        assert [d.seq for d in iq.entries_oldest_first()] == [0, 1]

    def test_age_order(self):
        iq = IssueQueue(8)
        for i in (0, 1, 2):
            iq.insert(dyn(seq=i))
        assert [d.seq for d in iq.entries_oldest_first()] == [0, 1, 2]

    def test_remove(self):
        iq = IssueQueue(8)
        a, b = dyn(seq=0), dyn(seq=1)
        iq.insert(a)
        iq.insert(b)
        iq.remove(a)
        assert [d.seq for d in iq.entries_oldest_first()] == [1]

    def test_remove_missing_raises(self):
        iq = IssueQueue(8)
        with pytest.raises(SimulationError):
            iq.remove(dyn())

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            IssueQueue(0)


class TestFifoIssueQueue:
    def test_dependent_chain_shares_fifo(self):
        iq = FifoIssueQueue(n_fifos=2, depth=4)
        producer = dyn(seq=0)
        consumer = dyn(seq=1, dst=6, srcs=(5,))
        consumer.providers = [producer]
        iq.insert(producer)
        iq.insert(consumer)
        # Only the head (producer) is an issue candidate.
        assert iq.entries_oldest_first() == [producer]
        assert len(iq) == 2

    def test_independent_instructions_get_new_fifos(self):
        iq = FifoIssueQueue(n_fifos=2, depth=4)
        a, b = dyn(seq=0), dyn(seq=1)
        iq.insert(a)
        iq.insert(b)
        assert set(iq.entries_oldest_first()) == {a, b}

    def test_placement_fails_when_no_fifo_usable(self):
        iq = FifoIssueQueue(n_fifos=1, depth=1)
        assert iq.insert(dyn(seq=0))
        unrelated = dyn(seq=1)
        assert not iq.can_accept(unrelated)
        assert not iq.insert(unrelated)
        assert len(iq) == 1

    def test_heads_sorted_by_age(self):
        iq = FifoIssueQueue(n_fifos=4, depth=4)
        for i in (2, 0, 1):
            iq.insert(dyn(seq=i))
        heads = iq.entries_oldest_first()
        assert [d.seq for d in heads] == sorted(d.seq for d in heads)

    def test_remove_non_head_rejected(self):
        iq = FifoIssueQueue(n_fifos=1, depth=4)
        producer = dyn(seq=0)
        consumer = dyn(seq=1, srcs=(5,))
        consumer.providers = [producer]
        iq.insert(producer)
        iq.insert(consumer)
        with pytest.raises(SimulationError):
            iq.remove(consumer)

    def test_plan_insertions_accounts_for_growth(self):
        iq = FifoIssueQueue(n_fifos=2, depth=1)
        plan = iq.plan_insertions([dyn(seq=0), dyn(seq=1)])
        assert plan is not None
        assert sorted(plan) == [0, 1]
        assert iq.plan_insertions([dyn(seq=0), dyn(seq=1), dyn(seq=2)]) is None

    def test_insert_at_respects_depth(self):
        iq = FifoIssueQueue(n_fifos=2, depth=1)
        iq.insert_at(dyn(seq=0), 0)
        with pytest.raises(SimulationError):
            iq.insert_at(dyn(seq=1), 0)

    def test_tails_producing(self):
        iq = FifoIssueQueue(n_fifos=2, depth=4)
        producer = dyn(seq=0)
        iq.insert(producer)
        assert iq.tails_producing(producer)
        assert not iq.tails_producing(dyn(seq=5))


class TestIssueQueueReadySet:
    def test_insert_with_no_pending_ops_is_ready(self):
        iq = IssueQueue(8)
        d = dyn(seq=0)
        iq.insert(d)
        assert iq.ready_count == 1
        assert iq.ready_oldest_first() == [d]

    def test_pending_entry_becomes_ready_via_mark_ready(self):
        iq = IssueQueue(8)
        waiting = dyn(seq=1)
        waiting.pending_ops = 1
        iq.insert(waiting)
        assert iq.ready_count == 0
        waiting.pending_ops = 0
        iq.mark_ready(waiting)
        assert iq.ready_oldest_first() == [waiting]

    def test_mark_ready_ignores_departed_entries(self):
        iq = IssueQueue(8)
        d = dyn(seq=0)
        d.pending_ops = 1
        iq.insert(d)
        iq.remove(d)
        d.pending_ops = 0
        iq.mark_ready(d)
        assert iq.ready_count == 0

    def test_ready_order_is_insertion_order_not_seq(self):
        # A copy gets a younger seq but can be inserted before an older
        # instruction; age order for select is insertion order.
        iq = IssueQueue(8)
        late_seq = dyn(seq=100)
        early_seq = dyn(seq=5)
        iq.insert(late_seq)
        iq.insert(early_seq)
        assert [d.seq for d in iq.ready_oldest_first()] == [100, 5]

    def test_issue_ready_removes_from_window(self):
        iq = IssueQueue(8)
        a, b = dyn(seq=0), dyn(seq=1)
        iq.insert(a)
        iq.insert(b)
        view = iq.ready_view()
        assert [entry for _, entry in view] == [a, b]
        iq.issue_ready(0)
        assert iq.ready_oldest_first() == [b]
        assert [d.seq for d in iq.entries_oldest_first()] == [1]

    def test_remove_discards_ready_entry(self):
        iq = IssueQueue(8)
        d = dyn(seq=0)
        iq.insert(d)
        iq.remove(d)
        assert iq.ready_count == 0


class TestFifoIssueQueueReadySet:
    def test_only_heads_are_ready(self):
        iq = FifoIssueQueue(n_fifos=2, depth=4)
        producer = dyn(seq=0)
        producer.pending_ops = 1
        consumer = dyn(seq=1, dst=6, srcs=(5,))
        consumer.providers = [producer]
        iq.insert(producer)
        iq.insert(consumer)
        assert iq.ready_count == 0  # head itself is pending
        producer.pending_ops = 0
        iq.mark_ready(producer)
        assert iq.ready_oldest_first() == [producer]
        # The chained consumer is not a head, so waking it does nothing.
        iq.mark_ready(consumer)
        assert iq.ready_oldest_first() == [producer]

    def test_successor_head_deferred_until_next_view(self):
        iq = FifoIssueQueue(n_fifos=1, depth=4)
        producer = dyn(seq=0)
        consumer = dyn(seq=1, dst=6, srcs=(5,))
        consumer.providers = [producer]
        iq.insert(producer)
        iq.insert(consumer)
        view = iq.ready_view()
        assert [entry for _, entry in view] == [producer]
        iq.issue_ready(0)
        # The exposed head does not join the live view mid-selection...
        assert view == []
        # ...but is enrolled at the start of the next cycle's view.
        assert iq.ready_oldest_first() == [consumer]

    def test_heads_ready_in_seq_order(self):
        iq = FifoIssueQueue(n_fifos=4, depth=4)
        for seq in (7, 2, 5):
            iq.insert(dyn(seq=seq))
        assert [d.seq for d in iq.ready_oldest_first()] == [2, 5, 7]


class TestBypassNetwork:
    def test_per_direction_budget(self):
        bypass = BypassNetwork(ports_per_direction=2, latency=1)
        assert bypass.claim(0, 0)
        assert bypass.claim(0, 0)
        assert not bypass.claim(0, 0)
        assert bypass.claim(0, 1)  # other direction unaffected

    def test_budget_renews(self):
        bypass = BypassNetwork(ports_per_direction=1)
        assert bypass.claim(0, 0)
        assert bypass.claim(1, 0)

    def test_transfer_counting(self):
        bypass = BypassNetwork()
        bypass.claim(0, 0)
        bypass.claim(0, 1)
        bypass.claim(1, 1)
        assert bypass.transfers == [1, 2]
        assert bypass.total_transfers == 3

    def test_zero_ports_always_refuses(self):
        bypass = BypassNetwork(ports_per_direction=0)
        assert not bypass.available(0, 0)
        assert not bypass.claim(0, 0)

    def test_negative_geometry_rejected(self):
        with pytest.raises(SimulationError):
            BypassNetwork(ports_per_direction=-1)
