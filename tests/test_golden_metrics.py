"""Golden-metrics pins: exact IPC of tiny seeded runs.

The campaign refactor must not silently change simulation semantics.
These values were produced by the simulator at the time the campaign
engine landed; any drift means the timing model (fetch, steering,
rename, issue, memory, commit) changed behaviour, not just its plumbing.
Update them only for an *intentional* model change, and say so in the
commit message.
"""

import pytest

from repro import simulate

#: (bench, scheme) -> IPC for n_instructions=1000, warmup=300, seed=0.
GOLDEN_IPC = {
    ("gcc", "modulo"): 1.639344262295082,
    ("gcc", "ldst-slice"): 1.763668430335097,
    ("gcc", "general-balance"): 1.7667844522968197,
    ("li", "modulo"): 1.1695906432748537,
    ("li", "ldst-slice"): 1.278772378516624,
    ("li", "general-balance"): 1.3020833333333333,
}


@pytest.mark.parametrize("bench,scheme", sorted(GOLDEN_IPC))
def test_golden_ipc(bench, scheme):
    result = simulate(
        bench, steering=scheme, n_instructions=1000, warmup=300, seed=0
    )
    assert result.ipc == pytest.approx(GOLDEN_IPC[(bench, scheme)], rel=1e-9)


def test_golden_ordering_holds():
    """The qualitative paper result on these pins: dynamic steering
    (general balance) beats the modulo strawman on both workloads."""
    for bench in ("gcc", "li"):
        assert (
            GOLDEN_IPC[(bench, "general-balance")]
            > GOLDEN_IPC[(bench, "modulo")]
        )
