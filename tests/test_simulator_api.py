"""Tests for the public simulate() API and the CLI."""

import pytest

from repro import (
    ProcessorConfig,
    available_schemes,
    make_steering,
    simulate,
    simulate_baseline,
    simulate_upper_bound,
    workload,
)
from repro.cli import build_parser, main
from repro.errors import ConfigError, WorkloadError


class TestSimulateAPI:
    def test_accepts_benchmark_name(self):
        result = simulate("li", n_instructions=600, warmup=200)
        assert result.benchmark == "li"

    def test_accepts_workload_object(self):
        wl = workload("li", seed=5)
        result = simulate(wl, n_instructions=600, warmup=200)
        assert result.benchmark == "li"

    def test_accepts_scheme_instance(self):
        scheme = make_steering("modulo")
        result = simulate(
            "li", steering=scheme, n_instructions=600, warmup=200
        )
        assert result.scheme == "modulo"

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            simulate("notabench", n_instructions=100)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError):
            simulate("li", steering="notascheme", n_instructions=100)

    def test_fifo_scheme_auto_configures_windows(self):
        result = simulate("li", steering="fifo", n_instructions=600, warmup=200)
        assert "fifo" in result.config_name

    def test_explicit_config_respected(self):
        result = simulate(
            "li",
            steering="naive",
            config=ProcessorConfig.baseline(),
            n_instructions=600,
            warmup=200,
        )
        assert result.config_name == "baseline"

    def test_baseline_helper(self):
        result = simulate_baseline("li", n_instructions=600, warmup=200)
        assert result.scheme == "naive"
        assert result.config_name == "baseline"

    def test_upper_bound_helper(self):
        result = simulate_upper_bound("li", n_instructions=600, warmup=200)
        assert result.config_name == "upper-bound"

    def test_all_schemes_listed(self):
        names = available_schemes()
        assert "general-balance" in names
        assert "naive" in names
        assert names == sorted(names)


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "-b", "li", "-s", "modulo"])
        assert args.bench == "li"
        assert args.scheme == "modulo"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "general-balance" in out
        assert "m88ksim" in out

    def test_run_command(self, capsys):
        code = main(
            ["run", "-b", "li", "-s", "general-balance", "-n", "600",
             "-w", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speed-up" in out

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        out = capsys.readouterr().out
        assert "fetch width" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1"]) == 0
        assert "bigtest.in" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_figure_fig15_small(self, capsys):
        code = main(["figure", "fig15", "-n", "500", "-w", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "regs/cycle" in out
