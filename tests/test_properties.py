"""Property-based tests (hypothesis) on core data structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import BypassNetwork, FifoIssueQueue, IssueQueue
from repro.core.balance import ImbalanceEstimator
from repro.frontend import CombinedPredictor, TwoBitCounterTable
from repro.isa import DynInst, Instruction, Opcode
from repro.memory import SetAssocCache
from repro.rename import FreeList


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------
@given(
    addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300),
)
@settings(max_examples=50, deadline=None)
def test_cache_counters_always_consistent(addrs):
    cache = SetAssocCache(1024, 2, 32)
    for addr in addrs:
        cache.access(addr)
    assert cache.hits + cache.misses == len(addrs)
    assert 0.0 <= cache.miss_rate <= 1.0


@given(
    addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_cache_repeat_of_recent_access_hits(addrs):
    """Accessing the same address twice in a row always hits the second
    time (the line was just made MRU)."""
    cache = SetAssocCache(512, 2, 32)
    for addr in addrs:
        cache.access(addr)
        assert cache.access(addr)


@given(
    addrs=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=100),
    assoc=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=30, deadline=None)
def test_cache_set_occupancy_bounded(addrs, assoc):
    cache = SetAssocCache(2048, assoc, 32)
    for addr in addrs:
        cache.access(addr)
    for ways in cache._sets:
        assert len(ways) <= assoc
        assert len(set(ways)) == len(ways)  # no duplicate tags


# ----------------------------------------------------------------------
# Predictors
# ----------------------------------------------------------------------
@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=300),
    pc=st.integers(0, 1 << 20).map(lambda x: x * 4),
)
@settings(max_examples=50, deadline=None)
def test_counter_table_stays_saturated(outcomes, pc):
    table = TwoBitCounterTable(256)
    for outcome in outcomes:
        table.update(pc >> 2, outcome)
        assert 0 <= table.counter(pc >> 2) <= 3


@given(
    outcomes=st.lists(st.booleans(), min_size=10, max_size=500),
)
@settings(max_examples=30, deadline=None)
def test_predictor_accuracy_accounting(outcomes):
    predictor = CombinedPredictor()
    for outcome in outcomes:
        predictor.predict_and_update(0x4000, outcome)
    assert predictor.predictions == len(outcomes)
    assert 0 <= predictor.mispredictions <= predictor.predictions
    assert 0.0 <= predictor.accuracy <= 1.0


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_constant_branch_eventually_perfect(data):
    """Any constant-outcome branch must converge to 100% prediction."""
    outcome = data.draw(st.booleans())
    predictor = CombinedPredictor()
    for _ in range(16):
        predictor.predict_and_update(0x8000, outcome)
    assert predictor.predict(0x8000) == outcome


# ----------------------------------------------------------------------
# Free lists
# ----------------------------------------------------------------------
@given(
    ops=st.lists(st.integers(1, 5), min_size=1, max_size=100),
)
@settings(max_examples=50, deadline=None)
def test_free_list_conservation(ops):
    """Alternating allocate/release keeps 0 <= used <= total."""
    fl = FreeList(64, initially_used=16)
    outstanding = []
    for n in ops:
        if fl.can_allocate(n):
            fl.allocate(n)
            outstanding.append(n)
        elif outstanding:
            fl.release(outstanding.pop())
        assert 0 <= fl.free <= fl.total
        assert fl.free + fl.used == fl.total


# ----------------------------------------------------------------------
# Imbalance estimator
# ----------------------------------------------------------------------
@given(
    events=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 12), st.integers(0, 12)),
        min_size=1,
        max_size=200,
    ),
)
@settings(max_examples=50, deadline=None)
def test_imbalance_estimator_never_crashes_and_signs_agree(events):
    est = ImbalanceEstimator(window=4, threshold=8)
    for cluster, r0, r1 in events:
        est.on_steer(cluster)
        est.on_cycle([r0, r1])
    # Whatever happened, the derived views must be consistent.
    if est.counter > 0:
        assert est.overloaded_cluster == 0
        assert est.preferred_cluster == 1
    else:
        assert est.overloaded_cluster == 1
        assert est.preferred_cluster == 0


@given(
    ready=st.tuples(st.integers(0, 20), st.integers(0, 20)),
)
@settings(max_examples=100, deadline=None)
def test_instant_imbalance_sign_matches_loads(ready):
    est = ImbalanceEstimator()
    sample = est.instant_imbalance(list(ready))
    r0, r1 = ready
    if sample > 0:
        assert r0 > r1
    elif sample < 0:
        assert r1 > r0


# ----------------------------------------------------------------------
# Windows
# ----------------------------------------------------------------------
def _dyn(seq):
    return DynInst(seq, Instruction(0x1000, Opcode.ADD, 5, (1,)))


@given(
    n_ops=st.integers(1, 120),
)
@settings(max_examples=30, deadline=None)
def test_issue_queue_occupancy_invariant(n_ops):
    iq = IssueQueue(64)
    inserted = []
    rng = random.Random(n_ops)
    for seq in range(n_ops):
        if iq.can_accept() and rng.random() < 0.7:
            dyn = _dyn(seq)
            iq.insert(dyn)
            inserted.append(dyn)
        elif inserted:
            iq.remove(inserted.pop(rng.randrange(len(inserted))))
        assert 0 <= len(iq) <= iq.capacity
        ages = [d.seq for d in iq.entries_oldest_first()]
        assert ages == sorted(ages)


@given(
    chain_spec=st.lists(st.booleans(), min_size=1, max_size=80),
)
@settings(max_examples=30, deadline=None)
def test_fifo_queue_chains_stay_in_order(chain_spec):
    """Within any FIFO, sequence numbers must increase head to tail."""
    iq = FifoIssueQueue(n_fifos=4, depth=8)
    last = None
    for seq, dependent in enumerate(chain_spec):
        dyn = _dyn(seq)
        if dependent and last is not None:
            dyn.providers = [last]
        if not iq.can_accept(dyn):
            break
        iq.insert(dyn)
        last = dyn
    for fifo in iq._fifos:
        seqs = [d.seq for d in fifo]
        assert seqs == sorted(seqs)


@given(
    claims=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 1)),
        min_size=1,
        max_size=200,
    ),
)
@settings(max_examples=50, deadline=None)
def test_bypass_never_exceeds_ports_per_cycle(claims):
    bypass = BypassNetwork(ports_per_direction=3)
    granted = {}
    for cycle, direction in sorted(claims):
        if bypass.claim(cycle, direction):
            granted[(cycle, direction)] = granted.get((cycle, direction), 0) + 1
    assert all(count <= 3 for count in granted.values())


# ----------------------------------------------------------------------
# End-to-end determinism
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 3))
@settings(max_examples=4, deadline=None)
def test_simulation_deterministic_for_seed(seed):
    from repro import simulate

    a = simulate(
        "li", "general-balance", n_instructions=800, warmup=200, seed=seed
    )
    b = simulate(
        "li", "general-balance", n_instructions=800, warmup=200, seed=seed
    )
    assert a.ipc == b.ipc
    assert a.cycles == b.cycles
    assert a.copies_issued == b.copies_issued
