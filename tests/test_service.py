"""Tests for repro.dist.serve: fair share, the daemon, the service backend."""

import io
import json
import threading
import time

import pytest

from repro import dist
from repro.analysis.campaign import Campaign, expand_grid, run_campaign
from repro.dist import serve as serve_module
from repro.dist.transport import listen_socket
from repro.errors import ConfigError, DistError

#: Tiny windows: these tests exercise dispatch, not timing.
N = 400
W = 120


@pytest.fixture(scope="module")
def points():
    return expand_grid(
        ["gcc", "li"], ["modulo", "general-balance"],
        n_instructions=N, warmup=W,
    )


@pytest.fixture(scope="module")
def serial(points):
    return Campaign(points, backend="serial").run()


@pytest.fixture
def daemon():
    """One fresh daemon (ephemeral port, one local worker) per test."""
    instance = dist.ServeDaemon(address="127.0.0.1:0", jobs=1).start()
    yield instance
    instance.stop()


def _assert_identical(results, serial):
    assert [(r.point, r.result) for r in results] == [
        (r.point, r.result) for r in serial
    ]


class TestFairScheduler:
    def test_single_tenant_is_fifo(self):
        sched = dist.FairScheduler()
        for item in range(5):
            sched.push("a", item)
        assert [sched.pop(timeout=1) for _ in range(5)] == [
            ("a", item) for item in range(5)
        ]

    def test_equal_weights_alternate(self):
        sched = dist.FairScheduler()
        for item in range(3):
            sched.push("a", f"a{item}")
            sched.push("b", f"b{item}")
        tenants = [sched.pop(timeout=1)[0] for _ in range(6)]
        assert tenants == ["a", "b", "a", "b", "a", "b"]

    def test_weight_gives_consecutive_turns(self):
        sched = dist.FairScheduler()
        sched.set_weight("a", 2)
        for item in range(4):
            sched.push("a", item)
        for item in range(2):
            sched.push("b", item)
        tenants = [sched.pop(timeout=1)[0] for _ in range(6)]
        assert tenants == ["a", "a", "b", "a", "a", "b"]

    def test_deep_backlog_cannot_starve_late_tenant(self):
        """The starvation property: a fresh tenant is served within one
        rotation no matter how deep the earlier tenant's backlog is."""
        sched = dist.FairScheduler()
        for item in range(100):
            sched.push("hog", item)
        assert sched.pop(timeout=1)[0] == "hog"
        sched.push("late", "first")
        picks = [sched.pop(timeout=1)[0] for _ in range(2)]
        assert "late" in picks

    def test_pop_timeout_returns_none(self):
        assert dist.FairScheduler().pop(timeout=0.05) is None

    def test_pop_blocks_until_push(self):
        sched = dist.FairScheduler()
        threading.Timer(0.1, sched.push, args=("a", 42)).start()
        assert sched.pop(timeout=5) == ("a", 42)

    def test_bad_weight_raises_config_error(self):
        with pytest.raises(ConfigError, match="positive integer"):
            dist.FairScheduler().set_weight("a", 0)

    def test_depths_and_dispatched(self):
        sched = dist.FairScheduler()
        sched.push("a", 1)
        sched.push("a", 2)
        assert sched.depths() == {"a": 2}
        sched.pop(timeout=1)
        assert sched.depths() == {"a": 1}
        assert sched.dispatched() == {"a": 1}


class TestKnobValidation:
    def test_timeout_accepts_numbers_and_none_spellings(self):
        assert dist.backends.coerce_timeout(None) is None
        assert dist.backends.coerce_timeout("none") is None
        assert dist.backends.coerce_timeout("inf") is None
        assert dist.backends.coerce_timeout("2.5") == 2.5
        assert dist.backends.coerce_timeout(30) == 30.0

    @pytest.mark.parametrize("bad", ["soon", 0, -1, "-2.5", True, []])
    def test_bad_timeout_raises_config_error(self, bad):
        with pytest.raises(ConfigError, match="positive number"):
            dist.backends.coerce_timeout(bad)

    def test_retries_accepts_zero(self):
        assert dist.backends.coerce_retries(0) == 0
        assert dist.backends.coerce_retries("3") == 3

    @pytest.mark.parametrize("bad", ["many", -1, 2.5, True, None])
    def test_bad_retries_raises_config_error(self, bad):
        with pytest.raises(ConfigError, match="non-negative integer"):
            dist.backends.coerce_retries(bad)

    def test_env_knobs_reach_worker_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_DIST_RETRIES", "4")
        backend = dist.WorkerBackend()
        assert backend.timeout == 12.5
        assert backend.retries == 4

    def test_bad_env_knob_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_TIMEOUT", "soon")
        with pytest.raises(ConfigError, match="REPRO_DIST_TIMEOUT"):
            dist.WorkerBackend()

    def test_explicit_arguments_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIST_TIMEOUT", "12.5")
        assert dist.WorkerBackend(timeout=None).timeout is None
        assert dist.WorkerBackend(timeout=3).timeout == 3.0

    def test_cli_rejects_bad_dist_timeout(self, points):
        from repro.cli import main

        code = main([
            "campaign", "-b", "gcc", "-s", "modulo",
            "--backend", "worker", "--dist-timeout", "soon",
        ])
        assert code == 2

    def test_cli_rejects_dist_flags_without_matching_backend(self):
        from repro.cli import main

        code = main([
            "campaign", "-b", "gcc", "-s", "modulo",
            "--backend", "serial", "--dist-timeout", "5",
        ])
        assert code == 2


class TestServiceAddressEnv:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_ADDRESS", raising=False)
        assert dist.service_address_from_env() is None

    def test_bad_address_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_ADDRESS", "nope")
        with pytest.raises(ConfigError, match="REPRO_SERVICE_ADDRESS"):
            dist.service_address_from_env()

    def test_tenant_falls_back_to_user(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TENANT", "alice")
        assert dist.service_tenant_from_env() == "alice"
        monkeypatch.delenv("REPRO_SERVICE_TENANT")
        monkeypatch.delenv("USER", raising=False)
        monkeypatch.delenv("USERNAME", raising=False)
        assert dist.service_tenant_from_env() == "default"

    def test_client_without_address_raises_config_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_ADDRESS", raising=False)
        with pytest.raises(ConfigError, match="REPRO_SERVICE_ADDRESS"):
            dist.ServiceClient()


class TestServiceBackend:
    def test_identical_to_serial(self, daemon, points, serial):
        backend = dist.backend("service", address=daemon.address)
        results = Campaign(points, backend=backend).run()
        _assert_identical(results, serial)

    def test_run_campaign_by_name_with_env(
        self, daemon, points, serial, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_ADDRESS", daemon.address)
        monkeypatch.setenv("REPRO_SERVICE_TENANT", "env-tenant")
        results = run_campaign(points, backend="service").results
        _assert_identical(results.runs, serial)
        assert "env-tenant" in daemon.status()["tenants"]

    def test_two_concurrent_tenants_both_identical(
        self, daemon, points, serial
    ):
        outcome = {}

        def tenant_run(name):
            backend = dist.backend(
                "service", address=daemon.address, tenant=name
            )
            outcome[name] = Campaign(points, backend=backend).run()

        threads = [
            threading.Thread(target=tenant_run, args=(name,))
            for name in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        _assert_identical(outcome["alpha"], serial)
        _assert_identical(outcome["beta"], serial)
        served = daemon.status()["tenants"]
        assert served["alpha"]["points_served"] == len(serial)
        assert served["beta"]["points_served"] == len(serial)

    def test_worker_death_mid_job_recovers(
        self, points, serial, tmp_path, monkeypatch
    ):
        """A worker crash consumes a retry, not the job."""
        flag = tmp_path / "crash"
        flag.write_text("")
        monkeypatch.setenv("REPRO_DIST_CRASH_FLAG", str(flag))
        daemon = dist.ServeDaemon(
            address="127.0.0.1:0", jobs=1, retries=2
        ).start()
        try:
            backend = dist.backend("service", address=daemon.address)
            results = Campaign(points, backend=backend).run()
        finally:
            daemon.stop()
        _assert_identical(results, serial)
        assert not flag.exists()  # the crash really happened

    def test_exhausted_retries_surface_as_point_errors(
        self, points, tmp_path, monkeypatch
    ):
        from repro.analysis.campaign import CampaignError

        flag = tmp_path / "crash"
        monkeypatch.setenv("REPRO_DIST_CRASH_FLAG", str(flag))
        daemon = dist.ServeDaemon(
            address="127.0.0.1:0", jobs=1, retries=0
        ).start()
        try:
            flag.write_text("")
            backend = dist.backend("service", address=daemon.address)
            with pytest.raises(CampaignError, match="worker failed"):
                Campaign(points[:1], backend=backend).run()
        finally:
            daemon.stop()

    def test_job_survives_client_disconnect(self, daemon, points, serial):
        """The job belongs to the daemon: submit, vanish, re-attach."""
        submitter = dist.ServiceClient(
            address=daemon.address, tenant="ghost"
        )
        job_id = submitter.submit(points)
        submitter.close()  # client gone; the daemon keeps working

        collector = dist.ServiceClient(
            address=daemon.address, tenant="ghost"
        )
        deadline = time.monotonic() + 120
        items = None
        while items is None and time.monotonic() < deadline:
            items = collector.collect(job_id)
        collector.close()
        assert items is not None and len(items) == len(points)
        assert all(item["ok"] for item in items)

    def test_daemon_restart_forces_resubmit(
        self, points, serial, monkeypatch
    ):
        """Job ids die with the daemon; the client resubmits and wins."""
        monkeypatch.setattr(serve_module, "RECONNECT_DELAY", 0.1)
        first = dist.ServeDaemon(address="127.0.0.1:0", jobs=1).start()
        address = first.address
        client = dist.ServiceClient(
            address=address, tenant="t", reconnects=50
        )
        job_id = client.submit(points)
        client.close()  # drop the TCP link so the port frees cleanly
        first.stop()

        deadline = time.monotonic() + 30
        while True:
            try:
                second = dist.ServeDaemon(address=address, jobs=1).start()
                break
            except DistError:  # old connections still draining
                assert time.monotonic() < deadline, "port never freed"
                time.sleep(0.2)
        try:
            with pytest.raises(DistError, match="unknown job"):
                client.collect(job_id)
            items = client.run(points)  # resubmits transparently
        finally:
            client.close()
            second.stop()
        assert len(items) == len(points) and all(i["ok"] for i in items)

    def test_unknown_job_mentions_resubmit(self, daemon):
        client = dist.ServiceClient(address=daemon.address, tenant="t")
        with pytest.raises(DistError, match="resubmit"):
            client.collect("job-0-999")
        client.close()

    def test_status_reports_fleet_and_protocol(self, daemon, points):
        backend = dist.backend("service", address=daemon.address)
        Campaign(points, backend=backend).run()
        client = dist.ServiceClient(address=daemon.address, tenant="cli")
        status = client.status()
        client.close()
        assert status["protocol"] == dist.SERVICE_PROTOCOL_VERSION
        assert status["slots"] == 1
        assert status["jobs"]["completed"] >= 1
        worker = status["pool"]["workers"][0]
        assert worker["transport"] == "stdio"
        assert worker["address"].startswith("pid:")


class TestListenWorkers:
    def _listen_worker(self):
        """One in-process listen-mode worker; returns its address."""
        out = io.StringIO()
        thread = threading.Thread(
            target=dist.serve_listen, args=("127.0.0.1:0", out), daemon=True
        )
        thread.start()
        deadline = time.monotonic() + 10
        while "\n" not in out.getvalue():
            assert time.monotonic() < deadline, "worker never announced"
            time.sleep(0.01)
        return out.getvalue().split()[-1]

    def test_remote_fleet_identical_to_serial(self, points, serial):
        addresses = [self._listen_worker(), self._listen_worker()]
        daemon = dist.ServeDaemon(
            address="127.0.0.1:0", jobs=0, remote=addresses
        ).start()
        try:
            backend = dist.backend("service", address=daemon.address)
            results = Campaign(points, backend=backend).run()
            status = daemon.status()
        finally:
            daemon.stop(stop_workers=True)
        _assert_identical(results, serial)
        assert sorted(
            worker["address"] for worker in status["pool"]["workers"]
        ) == sorted(addresses)
        assert all(
            worker["transport"] == "socket"
            for worker in status["pool"]["workers"]
        )

    def test_jobs_submitted_before_fleet_exists_complete(
        self, points, serial
    ):
        """Admission before the fleet is up: dispatch waits, nothing lost."""
        probe = listen_socket("127.0.0.1:0")
        address = dist.format_address(probe.getsockname()[:2])
        probe.close()  # nothing listens here yet
        daemon = dist.ServeDaemon(
            address="127.0.0.1:0", jobs=0, remote=[address]
        ).start()
        client = dist.ServiceClient(address=daemon.address, tenant="early")
        try:
            job_id = client.submit(points[:2])
            time.sleep(0.5)  # dispatcher spins against the dead address
            assert client.collect(job_id) is None

            out = io.StringIO()
            threading.Thread(
                target=dist.serve_listen, args=(address, out), daemon=True
            ).start()
            deadline = time.monotonic() + 120
            items = None
            while items is None and time.monotonic() < deadline:
                items = client.collect(job_id)
        finally:
            client.close()
            daemon.stop(stop_workers=True)
        assert items is not None and all(item["ok"] for item in items)

    def test_pool_adopts_remote_worker_directly(self, points, serial):
        """WorkerBackend with a remote pool: no daemon in the path."""
        address = self._listen_worker()
        pool = dist.WorkerPool(remote=[address])
        try:
            backend = dist.WorkerBackend(pool=pool)
            results = Campaign(points, backend=backend).run()
            stats = pool.stats()
        finally:
            pool.shutdown(stop_remote=True)
        _assert_identical(results, serial)
        assert stats["connects_total"] == 1
        assert stats["spawned_total"] == 0
        assert stats["workers"][0]["transport"] == "socket"


class TestWatchedJobDirectory:
    def test_adopted_job_merges_identical_to_serial(
        self, points, serial, tmp_path
    ):
        watch = tmp_path / "drop"
        watch.mkdir()
        job_dir = watch / "job-1"
        dist.package_job(points, str(job_dir))
        daemon = dist.ServeDaemon(
            address="127.0.0.1:0", jobs=1, watch=str(watch)
        ).start()
        try:
            deadline = time.monotonic() + 120
            done = job_dir / "serve.done"
            while not done.exists() and time.monotonic() < deadline:
                time.sleep(0.1)
            assert done.exists(), "daemon never finished the dropped job"
            tenants = daemon.status()["tenants"]
        finally:
            daemon.stop()
        merged = dist.merge_job(str(job_dir))
        _assert_identical(merged.results(), serial)
        assert "dir:job-1" in tenants


class TestServeCli:
    def test_serve_status_and_stop(self, daemon, capsys):
        from repro.cli import main

        assert main([
            "dist", "serve", "status", "--address", daemon.address,
        ]) == 0
        out = capsys.readouterr().out
        assert daemon.address in out

        assert main([
            "dist", "serve", "stop", "--address", daemon.address,
        ]) == 0
        assert daemon._stop.wait(timeout=10)

    def test_serve_status_json(self, daemon, tmp_path, capsys):
        from repro.cli import main

        stats = tmp_path / "stats.json"
        assert main([
            "dist", "serve", "status", "--address", daemon.address,
            "--json", str(stats),
        ]) == 0
        payload = json.loads(stats.read_text())
        assert payload["protocol"] == dist.SERVICE_PROTOCOL_VERSION

    def test_serve_status_without_daemon_fails(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_SERVICE_ADDRESS", raising=False)
        assert main(["dist", "serve", "status"]) == 2
        probe = listen_socket("127.0.0.1:0")
        address = dist.format_address(probe.getsockname()[:2])
        probe.close()
        assert main([
            "dist", "serve", "status", "--address", address,
        ]) == 1

    def test_backends_json_lists_service(self, capsys):
        from repro.cli import main

        assert main(["dist", "backends", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert "service" in {entry["name"] for entry in listed}
